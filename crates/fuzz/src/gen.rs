//! Seeded random generator of C programs in the cfront subset.
//!
//! Every program is a pure function of `(seed, case_index)`: same pair,
//! same bytes. The shapes are deliberately biased toward the paper's
//! pointer-disguising patterns — displaced bases (`a[i - D]` whose only
//! surviving intermediate points outside the object), last-use cursor
//! arithmetic (`*p++` where the advanced pointer is dead after the final
//! load), and backward walks from a one-past-the-end pointer — each with
//! an allocation positioned to trigger a collection while the disguise
//! is the only reference. Under a paranoid collector this is exactly the
//! traffic that separates `-O` from the safe modes.
//!
//! The emitted programs are ANSI-legal at the source level (no
//! out-of-object pointers are ever *written* in the source; the
//! disguises are the optimizer's doing), terminate in bounded steps, and
//! take no input, so all five modes must agree on exit code and output.

use crate::rng::Rng;
use std::fmt::Write as _;

/// A malloc'd array owned by `main`.
struct ArrayVar {
    name: String,
    len: i64,
}

/// One generated helper function; all take `(long *a, long n)` except
/// `CharWalk`, which takes `(char *s)`.
enum Kernel {
    /// Displaced base: allocation before the loop, `a[i - D]` inside.
    SumDisplaced { disp: i64 },
    /// The LICM form: an allocation inside the loop body, so the hoisted
    /// displaced base must survive a collection on every iteration.
    LoopAllocDisplaced { disp: i64 },
    /// Last-use cursor: `s + *p++` with a fresh allocation between loads.
    CursorWalk,
    /// Backward walk from the one-past-the-end pointer with `--p`.
    BackWalk,
    /// In-place update; exercises stores through a derived pointer.
    StrideWrite { mul: i64, add: i64 },
    /// Data-dependent branching over the elements.
    CondSum,
    /// `memcpy` into a fresh allocation, then sum the copy — block
    /// builtins route through `Memory::copy`.
    MemCopySum,
    /// `switch` dispatch on the element value.
    SwitchMix,
    /// A `do`/`while` cursor (callers guarantee `n > 0`).
    DoWhileWalk,
    /// NUL-terminated byte cursor over a `char` array.
    CharWalk,
    /// Stores overwritten before any use — dead-store elimination bait;
    /// the surviving store writes through a derived pointer while a
    /// fresh allocation sits between iterations.
    DeadStore { pad: i64 },
    /// Loop-carried `a[i * stride]` address arithmetic: strength
    /// reduction rewrites the scaled index into a running pointer — a
    /// manufactured interior pointer live across the churn allocation.
    StrideIndex { stride: i64 },
    /// A branch whose condition is constant only after constants merge
    /// across a join — SCCP bait; one arm of the inner branch is dead.
    ConstBranch { c: i64 },
    /// `strlen` plus a byte peek over a `char` array.
    StrLenSum,
}

impl Kernel {
    fn takes_chars(&self) -> bool {
        matches!(self, Kernel::CharWalk | Kernel::StrLenSum)
    }

    fn emit(&self, out: &mut String, name: &str) {
        match self {
            Kernel::SumDisplaced { disp } => {
                let _ = write!(
                    out,
                    "long {name}(long *a, long n) {{\n\
                     \x20   long *t;\n\
                     \x20   long i;\n\
                     \x20   long s;\n\
                     \x20   t = (long *) malloc(32);\n\
                     \x20   t[0] = n;\n\
                     \x20   s = t[0] - n;\n\
                     \x20   for (i = {disp}; i < n + {disp}; i = i + 1) {{\n\
                     \x20       s = s + a[i - {disp}];\n\
                     \x20   }}\n\
                     \x20   return s;\n\
                     }}\n\n"
                );
            }
            Kernel::LoopAllocDisplaced { disp } => {
                let _ = write!(
                    out,
                    "long {name}(long *a, long n) {{\n\
                     \x20   long i;\n\
                     \x20   long s;\n\
                     \x20   s = 0;\n\
                     \x20   for (i = {disp}; i < n + {disp}; i = i + 1) {{\n\
                     \x20       long *t;\n\
                     \x20       t = (long *) malloc(16);\n\
                     \x20       t[0] = i;\n\
                     \x20       s = s + a[i - {disp}] + t[0] - i;\n\
                     \x20   }}\n\
                     \x20   return s;\n\
                     }}\n\n"
                );
            }
            Kernel::CursorWalk => {
                let _ = write!(
                    out,
                    "long {name}(long *a, long n) {{\n\
                     \x20   long *p;\n\
                     \x20   long *t;\n\
                     \x20   long s;\n\
                     \x20   p = a;\n\
                     \x20   s = 0;\n\
                     \x20   while (n-- > 0) {{\n\
                     \x20       t = (long *) malloc(16);\n\
                     \x20       t[0] = s;\n\
                     \x20       s = t[0] + *p++;\n\
                     \x20   }}\n\
                     \x20   return s;\n\
                     }}\n\n"
                );
            }
            Kernel::BackWalk => {
                let _ = write!(
                    out,
                    "long {name}(long *a, long n) {{\n\
                     \x20   long *p;\n\
                     \x20   long *t;\n\
                     \x20   long s;\n\
                     \x20   t = (long *) malloc(24);\n\
                     \x20   t[0] = n;\n\
                     \x20   s = t[0] - n;\n\
                     \x20   p = a + n;\n\
                     \x20   while (p != a) {{\n\
                     \x20       --p;\n\
                     \x20       s = s + *p;\n\
                     \x20   }}\n\
                     \x20   return s;\n\
                     }}\n\n"
                );
            }
            Kernel::StrideWrite { mul, add } => {
                let _ = write!(
                    out,
                    "long {name}(long *a, long n) {{\n\
                     \x20   long i;\n\
                     \x20   for (i = 0; i < n; i = i + 1) {{\n\
                     \x20       a[i] = a[i] * {mul} + {add};\n\
                     \x20   }}\n\
                     \x20   return a[n - 1];\n\
                     }}\n\n"
                );
            }
            Kernel::CondSum => {
                let _ = write!(
                    out,
                    "long {name}(long *a, long n) {{\n\
                     \x20   long i;\n\
                     \x20   long s;\n\
                     \x20   s = 0;\n\
                     \x20   for (i = 0; i < n; i = i + 1) {{\n\
                     \x20       if (a[i] % 2 != 0) {{\n\
                     \x20           s = s + a[i];\n\
                     \x20       }} else {{\n\
                     \x20           s = s - a[i];\n\
                     \x20       }}\n\
                     \x20   }}\n\
                     \x20   return s;\n\
                     }}\n\n"
                );
            }
            Kernel::MemCopySum => {
                let _ = write!(
                    out,
                    "long {name}(long *a, long n) {{\n\
                     \x20   long *d;\n\
                     \x20   long s;\n\
                     \x20   long i;\n\
                     \x20   d = (long *) malloc(n * sizeof(long));\n\
                     \x20   memcpy(d, a, n * sizeof(long));\n\
                     \x20   s = 0;\n\
                     \x20   for (i = 0; i < n; i = i + 1) {{\n\
                     \x20       s = s + d[i];\n\
                     \x20   }}\n\
                     \x20   return s;\n\
                     }}\n\n"
                );
            }
            Kernel::SwitchMix => {
                let _ = write!(
                    out,
                    "long {name}(long *a, long n) {{\n\
                     \x20   long i;\n\
                     \x20   long s;\n\
                     \x20   s = 0;\n\
                     \x20   for (i = 0; i < n; i = i + 1) {{\n\
                     \x20       switch (a[i] % 3) {{\n\
                     \x20       case 0:\n\
                     \x20           s = s + a[i];\n\
                     \x20           break;\n\
                     \x20       case 1:\n\
                     \x20           s = s - a[i];\n\
                     \x20           break;\n\
                     \x20       default:\n\
                     \x20           s = s + 1;\n\
                     \x20           break;\n\
                     \x20       }}\n\
                     \x20   }}\n\
                     \x20   return s;\n\
                     }}\n\n"
                );
            }
            Kernel::DoWhileWalk => {
                let _ = write!(
                    out,
                    "long {name}(long *a, long n) {{\n\
                     \x20   long *p;\n\
                     \x20   long s;\n\
                     \x20   p = a;\n\
                     \x20   s = 0;\n\
                     \x20   do {{\n\
                     \x20       s = s + *p;\n\
                     \x20       p = p + 1;\n\
                     \x20       n = n - 1;\n\
                     \x20   }} while (n > 0);\n\
                     \x20   return s;\n\
                     }}\n\n"
                );
            }
            Kernel::CharWalk => {
                let _ = write!(
                    out,
                    "long {name}(char *s) {{\n\
                     \x20   long *t;\n\
                     \x20   long n;\n\
                     \x20   t = (long *) malloc(16);\n\
                     \x20   t[0] = 1;\n\
                     \x20   n = 0;\n\
                     \x20   while (*s) {{\n\
                     \x20       n = n + *s * t[0];\n\
                     \x20       s = s + 1;\n\
                     \x20   }}\n\
                     \x20   return n;\n\
                     }}\n\n"
                );
            }
            Kernel::DeadStore { pad } => {
                // `t[0] = s + pad` is overwritten before any use; only
                // `t[0] = i * 3` survives. The RHS of the surviving store
                // is load-free so no load sits between the two stores.
                let _ = write!(
                    out,
                    "long {name}(long *a, long n) {{\n\
                     \x20   long *t;\n\
                     \x20   long i;\n\
                     \x20   long s;\n\
                     \x20   t = (long *) malloc(32);\n\
                     \x20   s = 0;\n\
                     \x20   for (i = 0; i < n; i = i + 1) {{\n\
                     \x20       t[0] = s + {pad};\n\
                     \x20       t[0] = i * 3;\n\
                     \x20       s = s + t[0] + a[i];\n\
                     \x20   }}\n\
                     \x20   return s;\n\
                     }}\n\n"
                );
            }
            Kernel::StrideIndex { stride } => {
                let _ = write!(
                    out,
                    "long {name}(long *a, long n) {{\n\
                     \x20   long i;\n\
                     \x20   long s;\n\
                     \x20   long m;\n\
                     \x20   s = 0;\n\
                     \x20   m = n / {stride};\n\
                     \x20   for (i = 0; i < m; i = i + 1) {{\n\
                     \x20       long *t;\n\
                     \x20       t = (long *) malloc(16);\n\
                     \x20       t[0] = i;\n\
                     \x20       s = s + a[i * {stride}] + t[0] - i;\n\
                     \x20   }}\n\
                     \x20   return s;\n\
                     }}\n\n"
                );
            }
            Kernel::ConstBranch { c } => {
                // Both arms of the join bind the same constant, so only
                // SCCP (not plain folding) proves the inner condition.
                let _ = write!(
                    out,
                    "long {name}(long *a, long n) {{\n\
                     \x20   long f;\n\
                     \x20   long i;\n\
                     \x20   long s;\n\
                     \x20   long *t;\n\
                     \x20   t = (long *) malloc(16);\n\
                     \x20   t[0] = n;\n\
                     \x20   if (n > 4) {{\n\
                     \x20       f = {c};\n\
                     \x20   }} else {{\n\
                     \x20       f = {c};\n\
                     \x20   }}\n\
                     \x20   s = t[0] - n;\n\
                     \x20   for (i = 0; i < n; i = i + 1) {{\n\
                     \x20       if (f > {lim}) {{\n\
                     \x20           s = s + a[i];\n\
                     \x20       }} else {{\n\
                     \x20           s = s - a[i] * 2;\n\
                     \x20       }}\n\
                     \x20   }}\n\
                     \x20   return s;\n\
                     }}\n\n",
                    lim = c - 1
                );
            }
            Kernel::StrLenSum => {
                let _ = write!(
                    out,
                    "long {name}(char *s) {{\n\
                     \x20   long n;\n\
                     \x20   n = (long) strlen(s);\n\
                     \x20   return n * 5 + s[0];\n\
                     }}\n\n"
                );
            }
        }
    }
}

fn pick_kernel(r: &mut Rng, has_chars: bool) -> Kernel {
    // Weighted toward the disguising patterns the paper is about.
    let disp = [5i64, 64, 1000][r.index(3)];
    match r.index(if has_chars { 16 } else { 14 }) {
        0 | 1 => Kernel::SumDisplaced { disp },
        2 | 3 => Kernel::LoopAllocDisplaced { disp },
        4 => Kernel::CursorWalk,
        5 => Kernel::BackWalk,
        6 => Kernel::StrideWrite {
            mul: r.range_i64(2, 6),
            add: r.range_i64(-9, 10),
        },
        7 => Kernel::CondSum,
        8 => Kernel::MemCopySum,
        9 => Kernel::SwitchMix,
        10 => Kernel::DoWhileWalk,
        11 => Kernel::DeadStore {
            pad: r.range_i64(1, 9),
        },
        12 => Kernel::StrideIndex {
            stride: [2i64, 3, 4][r.index(3)],
        },
        13 => Kernel::ConstBranch {
            c: r.range_i64(1, 7),
        },
        14 => Kernel::CharWalk,
        _ => Kernel::StrLenSum,
    }
}

/// Generates the program for `(seed, case_index)`. Deterministic:
/// identical inputs produce identical bytes.
pub fn generate(seed: u64, case_index: u64) -> String {
    let label = format!("gcfuzz-{seed}");
    let mut r = Rng::for_case(&label, case_index);

    let n_arrays = 1 + r.index(2);
    let has_chars = r.chance(1, 3);
    let arrays: Vec<ArrayVar> = (0..n_arrays)
        .map(|i| ArrayVar {
            name: format!("a{i}"),
            len: r.range_i64(8, 33),
        })
        .collect();
    let char_len = r.range_i64(6, 24);

    let n_kernels = 1 + r.index(3);
    let kernels: Vec<Kernel> = (0..n_kernels)
        .map(|_| pick_kernel(&mut r, has_chars))
        .collect();

    let mut src = format!("/* gcfuzz seed={seed} case={case_index} */\n");
    for (i, k) in kernels.iter().enumerate() {
        k.emit(&mut src, &format!("k{i}"));
    }

    // main: declarations first (C89 style), then the phases.
    src.push_str("int main(void) {\n");
    for a in &arrays {
        let _ = writeln!(src, "    long *{};", a.name);
    }
    if has_chars {
        src.push_str("    char *c0;\n");
    }
    src.push_str("    long acc;\n    long j;\n");
    let inline_cursor = r.chance(1, 2);
    if inline_cursor {
        src.push_str("    long *p;\n");
    }
    src.push_str("    acc = 0;\n");

    for a in &arrays {
        let (name, len) = (&a.name, a.len);
        let mul = r.range_i64(1, 7);
        let off = r.range_i64(-25, 26);
        let _ = write!(
            src,
            "    {name} = (long *) malloc({len} * sizeof(long));\n\
             \x20   for (j = 0; j < {len}; j = j + 1) {{\n\
             \x20       {name}[j] = j * {mul} + {off};\n\
             \x20   }}\n"
        );
    }
    if has_chars {
        let _ = write!(
            src,
            "    c0 = (char *) malloc({});\n\
             \x20   for (j = 0; j < {char_len}; j = j + 1) {{\n\
             \x20       c0[j] = (char)(97 + j % 26);\n\
             \x20   }}\n\
             \x20   c0[{char_len}] = (char)0;\n",
            char_len + 1
        );
    }

    // Garbage churn: short-lived objects the collector may reclaim.
    if r.chance(2, 3) {
        let g = r.range_i64(4, 13);
        let _ = write!(
            src,
            "    for (j = 0; j < {g}; j = j + 1) {{\n\
             \x20       long *junk;\n\
             \x20       junk = (long *) malloc(40);\n\
             \x20       junk[0] = j * 3;\n\
             \x20       acc = acc + junk[0] - j * 3;\n\
             \x20   }}\n"
        );
    }
    if r.chance(1, 3) {
        src.push_str("    gc_collect();\n");
    }

    for (i, k) in kernels.iter().enumerate() {
        let calls = 1 + usize::from(r.chance(1, 3));
        for _ in 0..calls {
            if k.takes_chars() {
                let _ = writeln!(src, "    acc = acc * 31 + k{i}(c0);");
            } else {
                let a = &arrays[r.index(arrays.len())];
                let _ = writeln!(src, "    acc = acc * 31 + k{i}({}, {});", a.name, a.len);
            }
        }
    }

    if r.chance(1, 3) {
        let t = r.range_i64(1, 9);
        let e = r.range_i64(-9, 0);
        let _ = writeln!(src, "    acc = acc + (acc % 2 != 0 ? {t} : {e});");
    }
    if inline_cursor {
        let a = &arrays[r.index(arrays.len())];
        let _ = write!(
            src,
            "    p = {};\n\
             \x20   j = {};\n\
             \x20   while (j-- > 0) {{\n\
             \x20       acc = acc + *p++;\n\
             \x20   }}\n",
            a.name, a.len
        );
    }
    if r.chance(1, 3) {
        src.push_str("    gc_collect();\n");
    }

    src.push_str(
        "    putint(acc);\n\
         \x20   putchar(10);\n\
         \x20   return (int)(acc % 256);\n\
         }\n",
    );
    src
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(3, 7), generate(3, 7));
        assert_ne!(generate(3, 7), generate(3, 8), "cases vary");
        assert_ne!(generate(3, 7), generate(4, 7), "seeds vary");
    }

    #[test]
    fn generated_programs_parse() {
        for case in 0..50 {
            let src = generate(1, case);
            cfront::parse(&src).unwrap_or_else(|e| panic!("case {case}: {e}\n{src}"));
        }
    }
}
