//! Delta-debugging minimizer over the cfront AST.
//!
//! Given a divergent program and a predicate ("still shows the bug"),
//! the minimizer repeatedly applies the smallest structural edits that
//! keep the predicate true, always working on *parsed* trees and
//! re-rendering candidates through the pretty-printer — so the
//! `parse(pretty(ast)) == ast` round-trip property (see
//! `cfront::normalize` and the property test in cfront) is what makes
//! shrinking sound. Candidate edits, in deterministic order:
//!
//! 1. remove a non-`main` function;
//! 2. remove a global;
//! 3. remove a statement from a block (recursively);
//! 4. drop an `else` branch;
//! 5. hollow out a nested statement (replace with `;`).
//!
//! Every accepted edit strictly shrinks the tree, so the greedy
//! fixpoint loop terminates.

use cfront::ast::{Block, Program, Stmt};
use cfront::pretty::program_to_c;

/// Shrinks `source` while `interesting` stays true. Returns the
/// smallest rendering found; if `source` does not parse, or its
/// pretty-printed form is no longer interesting, returns the input
/// unchanged.
pub fn minimize(source: &str, interesting: &mut dyn FnMut(&str) -> bool) -> String {
    let Ok(mut prog) = cfront::parse(source) else {
        return source.to_string();
    };
    let mut cur = program_to_c(&prog);
    if !interesting(&cur) {
        return source.to_string();
    }
    loop {
        let mut adopted = false;
        let mut n = 0;
        while let Some(cand) = nth_edit(&prog, n) {
            let rendered = program_to_c(&cand);
            if interesting(&rendered) {
                prog = cand;
                cur = rendered;
                adopted = true;
                break;
            }
            n += 1;
        }
        if !adopted {
            return cur;
        }
    }
}

/// Applies the `n`-th candidate edit to a copy of `prog`, or `None` when
/// the edit space is exhausted. Enumeration order is fixed, so the
/// minimizer is deterministic.
fn nth_edit(prog: &Program, n: usize) -> Option<Program> {
    let mut p = prog.clone();
    let mut k = n;
    for fi in 0..p.funcs.len() {
        if p.funcs[fi].name != "main" {
            if k == 0 {
                p.funcs.remove(fi);
                return Some(p);
            }
            k -= 1;
        }
    }
    for gi in 0..p.globals.len() {
        if k == 0 {
            p.globals.remove(gi);
            return Some(p);
        }
        k -= 1;
    }
    for f in &mut p.funcs {
        if let Some(body) = &mut f.body {
            if edit_block(body, &mut k) {
                return Some(p);
            }
        }
    }
    None
}

/// Direct children first (removal shrinks the list), then recursion.
fn edit_block(b: &mut Block, k: &mut usize) -> bool {
    for i in 0..b.stmts.len() {
        if *k == 0 {
            b.stmts.remove(i);
            return true;
        }
        *k -= 1;
    }
    for s in &mut b.stmts {
        if edit_stmt(s, k) {
            return true;
        }
    }
    false
}

/// Offers hollowing a non-empty nested statement, dropping `else`
/// branches, and recursing into compound bodies.
fn edit_stmt(s: &mut Stmt, k: &mut usize) -> bool {
    match s {
        Stmt::Block(b) => edit_block(b, k),
        Stmt::If(_, t, e) => {
            if e.is_some() {
                if *k == 0 {
                    *e = None;
                    return true;
                }
                *k -= 1;
            }
            if hollow(t, k) || edit_stmt(t, k) {
                return true;
            }
            match e {
                Some(e) => hollow(e, k) || edit_stmt(e, k),
                None => false,
            }
        }
        Stmt::While(_, body) | Stmt::DoWhile(body, _) | Stmt::Switch(_, body) => {
            hollow(body, k) || edit_stmt(body, k)
        }
        Stmt::For { body, .. } => hollow(body, k) || edit_stmt(body, k),
        _ => false,
    }
}

fn hollow(s: &mut Stmt, k: &mut usize) -> bool {
    if !matches!(s, Stmt::Empty) {
        if *k == 0 {
            *s = Stmt::Empty;
            return true;
        }
        *k -= 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_statements_the_predicate_needs() {
        // "Interesting" = the program still prints 7. Everything else —
        // the dead helper, the global, the noise statements — must go.
        let src = r#"
            long unused_helper(long x) { return x * 2; }
            long g;
            int main(void) {
                long noise;
                noise = 3;
                noise = noise + 1;
                putint(7);
                if (noise > 100) { putint(9); } else { noise = 0; }
                return 0;
            }
        "#;
        let mut pred = |s: &str| match cvm::compile_and_run(
            s,
            &cvm::CompileOptions::optimized(),
            &cvm::VmOptions::default(),
        ) {
            Ok(r) => r.output == b"7",
            Err(_) => false,
        };
        assert!(pred(src), "original is interesting");
        let small = minimize(src, &mut pred);
        assert!(pred(&small), "minimized form still interesting");
        assert!(
            !small.contains("unused_helper") && !small.contains("noise"),
            "dead code removed:\n{small}"
        );
        assert!(small.len() < src.len(), "actually smaller");
        cfront::parse(&small).expect("minimized form parses");
    }

    #[test]
    fn uninteresting_input_is_returned_unchanged() {
        let src = "int main(void) { return 0; }";
        let mut pred = |_: &str| false;
        assert_eq!(minimize(src, &mut pred), src);
    }
}
