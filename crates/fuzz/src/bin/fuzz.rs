//! Differential mode-agreement fuzzing campaign.
//!
//! Usage: `fuzz [--seed N] [--count N] [--jobs N]`
//!
//! Generates `--count` deterministic random programs from `--seed`,
//! compiles each under all five modes, and checks the oracle (see the
//! gcfuzz crate docs). Divergent cases are minimized and printed as
//! ready-to-commit corpus entries. Exit code: 0 when every case agrees,
//! 1 when any diverges, 2 on bad arguments.

fn flag(args: &[String], name: &str) -> Option<u64> {
    match args.iter().position(|a| a == name).map(|i| args.get(i + 1)) {
        Some(Some(n)) => match n.parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("error: {name} takes a non-negative integer, got '{n}'");
                std::process::exit(2);
            }
        },
        Some(None) => {
            eprintln!("error: {name} requires a value");
            std::process::exit(2);
        }
        None => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for a in &args {
        if a.starts_with("--") && !matches!(a.as_str(), "--seed" | "--count" | "--jobs") {
            eprintln!("error: unknown flag '{a}'");
            eprintln!("usage: fuzz [--seed N] [--count N] [--jobs N]");
            std::process::exit(2);
        }
    }
    let seed = flag(&args, "--seed").unwrap_or(1);
    let count = flag(&args, "--count").unwrap_or(100);
    let jobs = match flag(&args, "--jobs") {
        Some(0) => {
            eprintln!("error: --jobs must be at least 1");
            std::process::exit(2);
        }
        Some(n) => n as usize,
        None => gcfuzz::default_jobs(),
    };

    let report = gcfuzz::run_campaign(seed, count, jobs);
    for f in &report.failures {
        println!("==== case {} (seed {seed}) ====", f.case_index);
        println!("divergence: {}", f.divergence);
        println!("--- minimized reproducer ---");
        println!("{}", f.minimized);
    }
    println!(
        "gcfuzz: {count} case(s) with seed {seed}: {} divergence(s)",
        report.failures.len()
    );
    if !report.failures.is_empty() {
        std::process::exit(1);
    }
}
