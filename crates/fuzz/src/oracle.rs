//! The differential mode-agreement oracle.
//!
//! One generated program, five builds (`Mode::all()`), one verdict. For
//! every mode the oracle checks:
//!
//! * the build succeeds, and — for annotated builds — the static
//!   safety verifier reports zero violations;
//! * the program runs to completion (generated programs are ANSI-legal
//!   and bounded, so *any* runtime error is a finding);
//! * two runs produce identical exit code, output, and per-block
//!   execution profile (the VM must be deterministic per mode; block
//!   profiles are not comparable *across* modes, where the IR differs);
//! * for the safe modes, a paranoid run — a collection at every
//!   allocation (`gc_threshold: 1`) — still succeeds with the same exit
//!   code and output. This is the shadow-reachability check: a
//!   source-reachable object that gets collected surfaces as a
//!   `UseAfterFree` or a wrong answer. `-O` is exempt by design — the
//!   paper's point is that it has no such guarantee;
//! * for the safe modes, the same paranoid run again under the
//!   bounded-pause collector (incremental tri-color marking + nursery,
//!   [`HeapConfig::bounded_pause`]): with `gc_threshold: 1` a mark cycle
//!   is in flight across essentially every mutator store, so this is the
//!   write barrier's adversarial workout — a single missed barrier
//!   surfaces as a lost object.
//!
//! Finally all five `(exit, output)` pairs must agree with the `-O`
//! baseline.

use gc_safety::Mode;
use gcheap::HeapConfig;
use std::fmt;

/// Instruction budget per run: generated programs finish in well under
/// a million steps, so hitting this means a runaway (itself a finding).
pub const MAX_STEPS: u64 = 50_000_000;

/// One way a program can fail the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// Compilation failed in one mode.
    Build {
        /// Failing mode.
        mode: Mode,
        /// Rendered compiler error.
        error: String,
    },
    /// The static safety verifier flagged an annotated build.
    Verifier {
        /// Failing mode.
        mode: Mode,
        /// Number of violations.
        count: usize,
        /// Rendered first violation.
        first: String,
    },
    /// A run under the default collector failed.
    Run {
        /// Failing mode.
        mode: Mode,
        /// Rendered `VmError`.
        error: String,
    },
    /// Two identical runs disagreed (exit, output, or block profile).
    Nondeterministic {
        /// Offending mode.
        mode: Mode,
    },
    /// Exit code differs from the `-O` baseline.
    Exit {
        /// Disagreeing mode.
        mode: Mode,
        /// Its exit code.
        got: i64,
        /// The baseline's exit code.
        want: i64,
    },
    /// Output bytes differ from the `-O` baseline.
    Output {
        /// Disagreeing mode.
        mode: Mode,
    },
    /// A safe mode failed under the paranoid collector — some
    /// source-reachable object was collected.
    Paranoid {
        /// Failing safe mode.
        mode: Mode,
        /// Rendered `VmError`.
        error: String,
    },
    /// A safe mode survived the paranoid collector but computed a
    /// different answer.
    ParanoidDiffers {
        /// Disagreeing safe mode.
        mode: Mode,
    },
    /// The gcprof instrumentation disagreed with the heap's own
    /// statistics — the census or a histogram lost count somewhere.
    ProfInconsistent {
        /// Offending mode.
        mode: Mode,
        /// What disagreed with what.
        detail: String,
    },
}

impl Divergence {
    /// A stable label for the divergence class, used to keep the
    /// minimizer on the *same* bug while it shrinks.
    pub fn kind(&self) -> (&'static str, Mode) {
        match *self {
            Divergence::Build { mode, .. } => ("build", mode),
            Divergence::Verifier { mode, .. } => ("verifier", mode),
            Divergence::Run { mode, .. } => ("run", mode),
            Divergence::Nondeterministic { mode } => ("nondeterministic", mode),
            Divergence::Exit { mode, .. } => ("exit", mode),
            Divergence::Output { mode } => ("output", mode),
            Divergence::Paranoid { mode, .. } => ("paranoid", mode),
            Divergence::ParanoidDiffers { mode } => ("paranoid-differs", mode),
            Divergence::ProfInconsistent { mode, .. } => ("prof-inconsistent", mode),
        }
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Build { mode, error } => {
                write!(f, "[{}] build failed: {error}", mode.label())
            }
            Divergence::Verifier { mode, count, first } => write!(
                f,
                "[{}] verifier found {count} violation(s), first: {first}",
                mode.label()
            ),
            Divergence::Run { mode, error } => {
                write!(f, "[{}] run failed: {error}", mode.label())
            }
            Divergence::Nondeterministic { mode } => {
                write!(f, "[{}] two identical runs disagreed", mode.label())
            }
            Divergence::Exit { mode, got, want } => {
                write!(f, "[{}] exit code {got} != baseline {want}", mode.label())
            }
            Divergence::Output { mode } => {
                write!(f, "[{}] output differs from the -O baseline", mode.label())
            }
            Divergence::Paranoid { mode, error } => write!(
                f,
                "[{}] paranoid collector run failed: {error}",
                mode.label()
            ),
            Divergence::ParanoidDiffers { mode } => write!(
                f,
                "[{}] paranoid collector run computed a different answer",
                mode.label()
            ),
            Divergence::ProfInconsistent { mode, detail } => write!(
                f,
                "[{}] profiler disagrees with heap statistics: {detail}",
                mode.label()
            ),
        }
    }
}

fn default_vm() -> cvm::VmOptions {
    cvm::VmOptions {
        max_steps: MAX_STEPS,
        ..cvm::VmOptions::default()
    }
}

fn paranoid_vm() -> cvm::VmOptions {
    cvm::VmOptions {
        heap_config: HeapConfig {
            gc_threshold: 1,
            ..HeapConfig::default()
        },
        // Cross-check the snapshot graph against the VM's shadow
        // liveness at end of run: after a full collect + sweep, every
        // surviving object must be reachable in the snapshot.
        snapshot_oracle: true,
        ..default_vm()
    }
}

/// The paranoid collector again, but bounded-pause: incremental marking
/// with a deliberately tiny budget (so cycles span many mutator stores)
/// plus nursery collections. Exercises the Dijkstra write barrier and the
/// remembered-set cards under the least forgiving schedule.
fn bounded_paranoid_vm() -> cvm::VmOptions {
    cvm::VmOptions {
        heap_config: HeapConfig {
            gc_threshold: 1,
            mark_budget_bytes: 64,
            ..HeapConfig::bounded_pause()
        },
        snapshot_oracle: true,
        ..default_vm()
    }
}

/// The gcprof-vs-heap consistency oracle, run once per mode on the first
/// instrumented run: every successful allocation must land in the size
/// histogram, every collection in the pause timeline, and the end-of-run
/// census must agree with the heap's own live-object accounting — both
/// against [`gcheap::HeapStats`] and internally (class totals sum to the
/// whole).
fn prof_consistency(
    mode: Mode,
    prof: &gc_safety::ProfHandle,
    r: &cvm::ExecOutcome,
) -> Option<Divergence> {
    let fail = |detail: String| Some(Divergence::ProfInconsistent { mode, detail });
    let Some(data) = prof.snapshot() else {
        return fail("enabled handle produced no snapshot".into());
    };
    if data.alloc_size.count() != r.heap.allocations {
        return fail(format!(
            "alloc_size histogram holds {} samples, heap performed {} allocations",
            data.alloc_size.count(),
            r.heap.allocations
        ));
    }
    if data.collections != r.heap.collections || data.pause_ns.count() != r.heap.collections {
        return fail(format!(
            "profiler saw {} collections ({} pauses), heap performed {}",
            data.collections,
            data.pause_ns.count(),
            r.heap.collections
        ));
    }
    let Some(census) = &data.census else {
        return fail("no end-of-run census recorded".into());
    };
    if census.live_objects != r.heap.objects_live || census.live_bytes != r.heap.bytes_live {
        return fail(format!(
            "census counts {} objects / {} bytes live, heap stats say {} / {}",
            census.live_objects, census.live_bytes, r.heap.objects_live, r.heap.bytes_live
        ));
    }
    // The VM retires lazy-sweep debt before its final stats snapshot, so
    // an end-of-run observation point must never report queued pages —
    // and adoptions can never exceed the pages every sweep has queued.
    if r.heap.sweep_debt_pages != 0 {
        return fail(format!(
            "end-of-run stats carry {} pages of unswept debt past the sweep_all barrier",
            r.heap.sweep_debt_pages
        ));
    }
    let class_objects: u64 = census.classes.iter().map(|c| c.live_objects).sum();
    let class_bytes: u64 = census.classes.iter().map(|c| c.live_bytes).sum();
    if class_objects + census.large_objects != census.live_objects
        || class_bytes + census.large_bytes != census.live_bytes
    {
        return fail(format!(
            "census classes sum to {class_objects} objects / {class_bytes} bytes \
             + {} large / {} bytes, but totals claim {} / {}",
            census.large_objects, census.large_bytes, census.live_objects, census.live_bytes
        ));
    }
    None
}

/// Runs the full differential check. `None` means all five modes agree;
/// `Some` carries the first divergence in deterministic mode order.
pub fn check(source: &str) -> Option<Divergence> {
    let mut baseline: Option<(i64, Vec<u8>)> = None;
    for mode in Mode::all() {
        let opts = mode.compile_options();
        let prog = match cvm::compile(source, &opts) {
            Ok(p) => p,
            Err(error) => return Some(Divergence::Build { mode, error }),
        };
        if opts.annotate.is_some() {
            let violations = cvm::verify_program(&prog, false);
            if let Some(v) = violations.first() {
                return Some(Divergence::Verifier {
                    mode,
                    count: violations.len(),
                    first: v.to_string(),
                });
            }
        }
        let prof = gc_safety::ProfHandle::enabled();
        let r1 = match cvm::run_compiled(
            &prog,
            &cvm::VmOptions {
                prof: prof.clone(),
                ..default_vm()
            },
        ) {
            Ok(r) => r,
            Err(e) => {
                return Some(Divergence::Run {
                    mode,
                    error: e.to_string(),
                })
            }
        };
        if let Some(d) = prof_consistency(mode, &prof, &r1) {
            return Some(d);
        }
        match cvm::run_compiled(&prog, &default_vm()) {
            Ok(r2)
                if r2.exit_code == r1.exit_code
                    && r2.output == r1.output
                    && r2.profile.block_counts == r1.profile.block_counts => {}
            _ => return Some(Divergence::Nondeterministic { mode }),
        }
        if mode.is_safe() {
            for opts in [paranoid_vm(), bounded_paranoid_vm()] {
                match cvm::run_compiled(&prog, &opts) {
                    Ok(rp) if rp.exit_code == r1.exit_code && rp.output == r1.output => {}
                    Ok(_) => return Some(Divergence::ParanoidDiffers { mode }),
                    Err(e) => {
                        return Some(Divergence::Paranoid {
                            mode,
                            error: e.to_string(),
                        })
                    }
                }
            }
        }
        match &baseline {
            None => baseline = Some((r1.exit_code, r1.output)),
            Some((exit, output)) => {
                if r1.exit_code != *exit {
                    return Some(Divergence::Exit {
                        mode,
                        got: r1.exit_code,
                        want: *exit,
                    });
                }
                if r1.output != *output {
                    return Some(Divergence::Output { mode });
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_well_behaved_program_passes() {
        let src = "int main(void) { putint(42); putchar(10); return 42; }";
        assert_eq!(check(src), None);
    }

    #[test]
    fn a_build_error_is_reported_for_the_first_mode() {
        let d = check("int main(void) { return undeclared; }").expect("diverges");
        assert_eq!(d.kind(), ("build", Mode::O));
    }

    #[test]
    fn a_runtime_error_is_a_finding() {
        let d = check("int main(void) { abort(); return 0; }").expect("diverges");
        assert_eq!(d.kind(), ("run", Mode::O));
    }

    #[test]
    fn the_paper_hazard_survives_in_safe_modes() {
        // The displaced-base hazard: the paranoid safe-mode runs are the
        // shadow-reachability teeth. `-O` is exempt (and would fail).
        let src = r#"
            char hazard(char *p) {
                char *trigger = (char *) malloc(64);
                long i = (long) trigger[0] + 2000;
                return p[i - 1000];
            }
            int main(void) {
                char *buf = (char *) malloc(4000);
                long j;
                for (j = 0; j < 4000; j++) buf[j] = (char)(j % 50);
                return hazard(buf);
            }
        "#;
        assert_eq!(check(src), None);
    }
}
