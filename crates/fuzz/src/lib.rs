//! # gcfuzz — differential mode-agreement fuzzer
//!
//! The paper's claim is behavioural: the GC-safety annotations change
//! *nothing* about what a program computes, in any mode, while the safe
//! modes additionally survive a collector that runs at every allocation.
//! gcfuzz turns that claim into a randomized test:
//!
//! * [`gen`] — a seeded, deterministic generator of C programs in the
//!   cfront subset, biased toward the paper's pointer-disguising
//!   patterns (displaced bases, last-use cursor arithmetic);
//! * [`oracle`] — compiles each program under all five [`Mode`]s and
//!   checks build success, verifier cleanliness, per-mode determinism,
//!   cross-mode exit/output agreement, and paranoid-collector survival
//!   for the safe modes;
//! * [`minimize`] — a delta-debugging shrinker that works on parsed
//!   ASTs through the cfront pretty-printer round-trip.
//!
//! [`run_campaign`] fans cases out across scoped worker threads (the
//! same pattern as the bench matrix) and reassembles findings in case
//! order, so a campaign's report is byte-identical regardless of
//! `--jobs`. Divergent cases are re-generated from their index and
//! minimized while preserving the divergence class.

#![warn(missing_docs)]

pub mod gen;
pub mod minimize;
pub mod oracle;
pub mod rng;

pub use gc_safety::{default_jobs, Mode};
pub use gen::generate;
pub use minimize::minimize;
pub use oracle::{check, Divergence};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One divergent case, with its shrunken reproducer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseReport {
    /// Index of the case within the campaign (`0..count`).
    pub case_index: u64,
    /// The full generated program.
    pub source: String,
    /// The divergence the oracle found.
    pub divergence: Divergence,
    /// The minimized program, still showing the same divergence class.
    pub minimized: String,
}

/// A whole campaign's findings, in case order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// The campaign seed.
    pub seed: u64,
    /// Number of cases generated and checked.
    pub count: u64,
    /// Divergent cases (empty when all modes agree everywhere).
    pub failures: Vec<CaseReport>,
}

/// Generates and checks `count` cases from `seed` across `jobs` worker
/// threads. Deterministic: the report depends only on `(seed, count)`.
pub fn run_campaign(seed: u64, count: u64, jobs: usize) -> Report {
    let slots: Vec<Mutex<Option<Option<Divergence>>>> =
        (0..count).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = jobs.clamp(1, count.max(1) as usize);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed) as u64;
                if i >= count {
                    break;
                }
                let src = gen::generate(seed, i);
                let verdict = oracle::check(&src);
                *slots[i as usize].lock().expect("case slot") = Some(verdict);
            });
        }
    });
    let mut failures = Vec::new();
    for (i, slot) in slots.into_iter().enumerate() {
        let verdict = slot
            .into_inner()
            .expect("case slot")
            .expect("every case was checked");
        if let Some(divergence) = verdict {
            let source = gen::generate(seed, i as u64);
            let kind = divergence.kind();
            let minimized = minimize::minimize(&source, &mut |s| {
                oracle::check(s).is_some_and(|d| d.kind() == kind)
            });
            failures.push(CaseReport {
                case_index: i as u64,
                source,
                divergence,
                minimized,
            });
        }
    }
    Report {
        seed,
        count,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_campaign_is_clean() {
        let report = run_campaign(11, 8, 2);
        for f in &report.failures {
            eprintln!("case {}: {}\n{}", f.case_index, f.divergence, f.minimized);
        }
        assert!(report.failures.is_empty());
    }

    #[test]
    fn campaigns_are_reproducible_regardless_of_jobs() {
        assert_eq!(run_campaign(7, 6, 1), run_campaign(7, 6, 3));
    }
}
