//! Deterministic PRNG for program generation.
//!
//! The container builds fully offline, so the fuzzer hand-rolls its
//! randomness instead of depending on an external crate: the same
//! xorshift64* generator the randomized integration tests use
//! (`tests/common/mod.rs`), duplicated here because a library crate
//! cannot depend on the facade's test support files. Every stream is a
//! pure function of the seed, so any campaign is replayable bit-for-bit
//! from its `--seed`/`--count` pair.

/// xorshift64* — tiny, fast, and plenty good for test-case generation.
pub struct Rng(u64);

impl Rng {
    /// Seeds the generator; `seed` must be nonzero (0 is remapped).
    pub fn new(seed: u64) -> Self {
        Rng(if seed == 0 { 0x9E3779B97F4A7C15 } else { seed })
    }

    /// A per-case seed derived from a label and case index.
    pub fn for_case(label: &str, case: u64) -> Self {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a over the label
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Rng::new(h ^ case.wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform in `lo..hi` (half-open, hi > lo).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.below((hi - lo) as u64) as i64)
    }

    /// Uniform usize in `0..n`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// True with probability `num`/`den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_varied() {
        let mut a = Rng::for_case("t", 1);
        let mut b = Rng::for_case("t", 1);
        let mut c = Rng::for_case("t", 2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys, "same seed, same stream");
        assert_ne!(xs, zs, "different case, different stream");
    }
}
