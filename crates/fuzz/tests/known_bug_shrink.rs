//! Acceptance: the minimizer, pointed at a program carrying the
//! paper's known `-O` hazard (a displaced base whose object is
//! collected while only the disguise survives), shrinks it to a
//! corpus-style reproducer automatically.

use cvm::{compile_and_run, CompileOptions, VmError, VmOptions};
use gcheap::HeapConfig;

fn paranoid() -> VmOptions {
    VmOptions {
        heap_config: HeapConfig {
            gc_threshold: 1,
            ..HeapConfig::default()
        },
        ..VmOptions::default()
    }
}

/// The permanent divergence the paper is about: the `-O` build dies of
/// premature collection under a paranoid collector while the annotated
/// build, with the same optimizations, survives.
fn shows_the_hazard(src: &str) -> bool {
    let unsafe_dies = matches!(
        compile_and_run(src, &CompileOptions::optimized(), &paranoid()),
        Err(VmError::UseAfterFree { .. })
    );
    let safe_survives =
        compile_and_run(src, &CompileOptions::optimized_safe(), &paranoid()).is_ok();
    unsafe_dies && safe_survives
}

#[test]
fn the_known_hazard_shrinks_to_a_corpus_style_reproducer() {
    // The gc_unsafety.rs hazard buried under dead helpers, globals, and
    // noise statements.
    let src = r#"
        long table_a;
        long table_b;
        long scale(long x) { return x * 3 + 1; }
        long twiddle(long *v, long n) {
            long i;
            long s;
            s = 0;
            for (i = 0; i < n; i = i + 1) { s = s + v[i]; }
            return s;
        }
        char hazard(char *p) {
            char *trigger = (char *) malloc(64);
            long i = (long) trigger[0] + 2000;
            return p[i - 1000];
        }
        int main(void) {
            char *buf = (char *) malloc(4000);
            long j;
            long waste;
            waste = 0;
            for (j = 0; j < 10; j = j + 1) { waste = waste + scale(j); }
            for (j = 0; j < 4000; j++) buf[j] = (char)(j % 50);
            if (waste > 10000) { putint(waste); } else { waste = waste - 1; }
            return hazard(buf);
        }
    "#;
    assert!(shows_the_hazard(src), "the seeded hazard is live");

    let small = gcfuzz::minimize(src, &mut |s| shows_the_hazard(s));

    assert!(
        shows_the_hazard(&small),
        "still the same bug after shrinking"
    );
    cfront::parse(&small).expect("reproducer parses");
    assert!(
        small.len() < src.len() / 2,
        "shrunk below half the input:\n{small}"
    );
    for gone in ["scale", "twiddle", "waste", "table_a", "table_b"] {
        assert!(!small.contains(gone), "noise '{gone}' removed:\n{small}");
    }
    assert!(
        small.contains("hazard") && small.contains("malloc"),
        "the essence survives:\n{small}"
    );
}
