//! Hash-soundness property test over the fuzz generator's corpus: the
//! structural hash every pipeline cache keys on must be (a) invariant
//! under formatting — comment/whitespace edits and a pretty-print →
//! re-parse round trip — and (b) sound as a cache key: if two distinct
//! generated programs ever land on the same hash, sharing a compiled
//! artifact between them is only correct if they behave identically, so
//! the test builds and runs both and fails on any behavioral
//! divergence. (With a 64-bit structural FNV over a few hundred
//! programs, collisions are not expected at all; the run-both check is
//! the safety net that keeps this test honest if that ever changes.)

use cvm::{compile, run_compiled, CompileOptions, VmOptions};
use std::collections::HashMap;

fn behavior(source: &str) -> Vec<(Vec<u8>, i64)> {
    // Two option sets bracket the pipeline: the full optimizer and the
    // checked debug build exercise different lowering and annotation.
    [CompileOptions::optimized(), CompileOptions::debug_checked()]
        .iter()
        .map(|opts| {
            let prog = compile(source, opts).expect("generated programs compile");
            let out = run_compiled(&prog, &VmOptions::default()).expect("generated programs run");
            (out.output, out.exit_code)
        })
        .collect()
}

#[test]
fn generator_corpus_hashes_are_format_invariant_and_collision_sound() {
    let mut by_hash: HashMap<u64, String> = HashMap::new();
    let mut corpus = 0u64;
    for seed in [1, 2] {
        for case in 0..150 {
            let src = gcfuzz::gen::generate(seed, case);
            let parsed = cfront::parse(&src).expect("generator output parses");
            let h = cfront::program_hash(&parsed);
            corpus += 1;

            // Formatting edits must not move the hash: a comment header,
            // blank lines, and trailing whitespace are all invisible.
            let reformatted = format!(
                "/* corpus {seed}/{case} */\n\n{}\n",
                src.replace('\n', " \n")
            );
            let reparsed = cfront::parse(&reformatted).expect("reformatted source parses");
            assert_eq!(
                h,
                cfront::program_hash(&reparsed),
                "formatting edit moved the hash (seed {seed} case {case})"
            );

            // Pretty-print → re-parse round trip is hash-invariant.
            let pretty = cfront::pretty::program_to_c(&parsed);
            let round = cfront::parse(&pretty).expect("pretty output parses");
            assert_eq!(
                h,
                cfront::program_hash(&round),
                "pretty round trip moved the hash (seed {seed} case {case})"
            );

            match by_hash.insert(h, src.clone()) {
                None => {}
                Some(prev) if prev == src => {}
                Some(prev) => {
                    // A genuine cross-program collision: the cache would
                    // serve one program's artifact for the other, which
                    // is only sound if they behave identically.
                    assert_eq!(
                        behavior(&prev),
                        behavior(&src),
                        "hash collision between behaviorally distinct programs \
                         (seed {seed} case {case}) — the cache key is unsound"
                    );
                }
            }
        }
    }
    // The property is vacuous unless the corpus was diverse: almost
    // every generated program should have its own hash.
    assert!(
        by_hash.len() as u64 > corpus * 9 / 10,
        "corpus too degenerate: {} distinct hashes from {corpus} programs",
        by_hash.len()
    );
}
