//! Fuzz soak with the compilation cache in the loop: running the same
//! campaign twice must produce identical verdicts — the second pass is
//! served entirely from the pipeline caches, so any divergence means a
//! cached artifact behaved differently from a cold compile.
//!
//! The case count keeps the campaign's ~4 compile-cache entries per
//! program well under the cache's per-shard FIFO capacity (512 entries
//! over 16 shards): larger campaigns overflow the fuller shards and the
//! warm pass stops being pure hits.

#[test]
fn warm_campaign_verdicts_match_cold_with_a_nonzero_hit_rate() {
    let stage = |name: &str| {
        cvm::pipeline_cache_stats()
            .into_iter()
            .find(|s| s.stage == name)
            .expect("stage exists")
    };
    let cold = gcfuzz::run_campaign(7, 60, 4);
    assert!(
        cold.failures.is_empty(),
        "cold campaign diverged: {:?}",
        cold.failures
    );
    let before = stage("compile");
    let warm = gcfuzz::run_campaign(7, 60, 4);
    let after = stage("compile");
    assert_eq!(cold, warm, "warm campaign verdicts differ from cold");
    assert!(
        after.hits > before.hits,
        "the warm campaign never hit the compile cache"
    );
    assert_eq!(
        after.misses, before.misses,
        "the warm campaign recompiled something the cold pass cached"
    );
}
