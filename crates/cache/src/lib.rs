//! # gccache — concurrent memoization for the compilation pipeline
//!
//! A dependency-free sharded cache: each stage of the pipeline keeps a
//! [`Cache`] keyed by the structural hash of its input (plus an options
//! fingerprint) and memoizes the stage artifact. The paper's preprocessor
//! is a pure function of its input, so so is every downstream stage — a
//! hit is behaviourally indistinguishable from a recompute, provided the
//! caller re-binds any *positional* data (spans, `line:col` labels) to
//! the requesting program; see `DESIGN.md` §13.
//!
//! Design points:
//!
//! * **Sharded `Mutex<HashMap>`** — no new dependencies, no lock-free
//!   subtlety. Shard selection hashes the key, so unrelated compiles
//!   rarely contend.
//! * **FIFO eviction** with a per-shard capacity bound: fuzz campaigns
//!   push tens of thousands of distinct programs through the pipeline,
//!   and insertion-order eviction keeps memory flat while the bench
//!   matrix's tiny working set never evicts.
//! * **Per-stage counters** (hits / misses / evictions / entries) behind
//!   relaxed atomics, snapshot via [`Cache::stats`]. Counters are *not*
//!   deterministic across `--jobs` levels — racing workers legitimately
//!   both miss the same key — so exports treat them like wall-clock data.
//! * A process-global **kill switch** ([`set_enabled`]): disabling turns
//!   every lookup into a silent miss and every insert into a no-op, which
//!   is how cold runs and A/B measurements are taken in-process.

#![warn(missing_docs)]

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables or disables every [`Cache`] in the process.
///
/// While disabled, `get*` returns `None` without counting and `insert`
/// drops its value, so a disabled run is byte-for-byte a cold pipeline.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::SeqCst);
}

/// Whether caching is currently enabled (the default).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::SeqCst)
}

/// A point-in-time snapshot of one stage cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageStats {
    /// Stage label (`"annotate"`, `"lower"`, `"compile"`, `"asm"`, …).
    pub stage: &'static str,
    /// Lookups that returned a usable artifact.
    pub hits: u64,
    /// Lookups that found nothing usable (including predicate rejections).
    pub misses: u64,
    /// Entries dropped by FIFO eviction.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
}

impl StageStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in permille of lookups (0 when there were none).
    pub fn hit_rate_permille(&self) -> u64 {
        match self.lookups() {
            0 => 0,
            n => self.hits * 1000 / n,
        }
    }
}

/// Sums a slice of stage snapshots into one aggregate row.
pub fn total(stats: &[StageStats]) -> StageStats {
    let mut t = StageStats {
        stage: "total",
        hits: 0,
        misses: 0,
        evictions: 0,
        entries: 0,
    };
    for s in stats {
        t.hits += s.hits;
        t.misses += s.misses;
        t.evictions += s.evictions;
        t.entries += s.entries;
    }
    t
}

struct Shard<K, V> {
    map: HashMap<K, V>,
    // FIFO order of first insertion; re-inserting an existing key keeps
    // its slot (the value is refreshed in place).
    order: VecDeque<K>,
}

/// A sharded, bounded, counted memoization table.
pub struct Cache<K, V> {
    stage: &'static str,
    shards: Vec<Mutex<Shard<K, V>>>,
    cap_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

const SHARDS: usize = 16;

impl<K: Hash + Eq + Clone, V: Clone> Cache<K, V> {
    /// Creates a cache named `stage` holding at most `capacity` entries
    /// (rounded up to a multiple of the shard count).
    pub fn new(stage: &'static str, capacity: usize) -> Self {
        Cache {
            stage,
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        order: VecDeque::new(),
                    })
                })
                .collect(),
            cap_per_shard: capacity.div_ceil(SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Looks `key` up, counting a hit or miss.
    pub fn get(&self, key: &K) -> Option<V> {
        self.get_if(key, |_| true)
    }

    /// Looks `key` up, but only accepts the stored value when `usable`
    /// approves it; a rejected value counts as a miss (the caller must
    /// recompute). Used for trace-carrying entries that only replay for
    /// an exact source-text match.
    pub fn get_if(&self, key: &K, usable: impl FnOnce(&V) -> bool) -> Option<V> {
        if !enabled() {
            return None;
        }
        let shard = self.shard(key).lock().expect("cache shard poisoned");
        let found = shard.map.get(key).filter(|v| usable(v)).cloned();
        drop(shard);
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) an entry, evicting the oldest entry of the
    /// shard when the capacity bound is exceeded.
    pub fn insert(&self, key: K, value: V) {
        if !enabled() {
            return;
        }
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        if shard.map.insert(key.clone(), value).is_none() {
            shard.order.push_back(key);
            if shard.order.len() > self.cap_per_shard {
                if let Some(old) = shard.order.pop_front() {
                    shard.map.remove(&old);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Drops every entry (counters are preserved; they are cumulative).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().expect("cache shard poisoned");
            s.map.clear();
            s.order.clear();
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> StageStats {
        StageStats {
            stage: self.stage,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }
}

/// A deterministic 64-bit FNV-1a hasher, exposed so callers can
/// fingerprint source text and options without pulling in a hashing
/// dependency. Implements [`std::hash::Hasher`], so `#[derive(Hash)]`
/// types feed it directly.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }
}

/// FNV-1a fingerprint of a byte string (used for exact source-text
/// identity checks on trace-carrying cache entries).
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The kill switch is process-global and the test harness is threaded:
    // every test that depends on the enabled state serializes on this.
    static SWITCH: Mutex<()> = Mutex::new(());

    #[test]
    fn hit_miss_and_counters() {
        let _g = SWITCH.lock().unwrap();
        let c: Cache<u64, String> = Cache::new("t", 64);
        assert_eq!(c.get(&1), None);
        c.insert(1, "one".into());
        assert_eq!(c.get(&1).as_deref(), Some("one"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert_eq!(s.hit_rate_permille(), 500);
    }

    #[test]
    fn predicate_rejection_counts_as_miss() {
        let _g = SWITCH.lock().unwrap();
        let c: Cache<u64, u64> = Cache::new("t", 64);
        c.insert(7, 42);
        assert_eq!(c.get_if(&7, |v| *v != 42), None);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.get_if(&7, |v| *v == 42), Some(42));
    }

    #[test]
    fn fifo_eviction_is_bounded_and_counted() {
        let _g = SWITCH.lock().unwrap();
        let c: Cache<u64, u64> = Cache::new("t", SHARDS); // one entry per shard
        for k in 0..(SHARDS as u64 * 4) {
            c.insert(k, k);
        }
        assert!(c.len() <= SHARDS, "capacity bound holds: {}", c.len());
        assert!(c.stats().evictions > 0);
    }

    #[test]
    fn reinsert_refreshes_without_duplicating_order() {
        let _g = SWITCH.lock().unwrap();
        let c: Cache<u64, u64> = Cache::new("t", 64);
        c.insert(1, 10);
        c.insert(1, 20);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&1), Some(20));
    }

    #[test]
    fn kill_switch_makes_every_lookup_a_silent_miss() {
        let _g = SWITCH.lock().unwrap();
        let c: Cache<u64, u64> = Cache::new("t", 64);
        c.insert(1, 10);
        set_enabled(false);
        assert_eq!(c.get(&1), None);
        c.insert(2, 20);
        set_enabled(true);
        assert_eq!(c.get(&2), None, "insert while disabled dropped");
        assert_eq!(c.get(&1), Some(10), "prior entries survive the toggle");
    }

    #[test]
    fn fnv_is_deterministic_and_spreads() {
        assert_eq!(fingerprint(b"abc"), fingerprint(b"abc"));
        assert_ne!(fingerprint(b"abc"), fingerprint(b"abd"));
        assert_ne!(fingerprint(b""), fingerprint(b"\0"));
    }

    #[test]
    fn totals_sum_stage_rows() {
        let a = StageStats {
            stage: "a",
            hits: 1,
            misses: 2,
            evictions: 3,
            entries: 4,
        };
        let t = total(&[a, a]);
        assert_eq!((t.hits, t.misses, t.evictions, t.entries), (2, 4, 6, 8));
    }
}
