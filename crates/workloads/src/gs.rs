//! `gs` — a miniature of the Ghostscript workload.
//!
//! A PostScript-flavoured stack interpreter: tagged objects, an operand
//! stack, a name dictionary, array and string composition, and an operator
//! dispatch table of function pointers. Like the paper's gs, every
//! composite object carries a prepended standard header (type word before
//! the payload), "an unusually clean coding style", and — as the paper
//! observed — no pointer arithmetic errors for the checker to find.
//!
//! The program text is read from the input stream.

/// The C source of the workload.
pub const SOURCE: &str = r#"
/* mini-gs: a PostScript-flavoured token interpreter. */

enum { T_INT, T_STR, T_ARR };

struct obj {
    int type;          /* the prepended standard header */
    long ival;
    char *sval;
    struct obj **elems;
    int len;
};

struct dictent {
    char *name;
    struct obj *val;
    struct dictent *next;
};

struct obj **stack;
int sp = 0;
int stack_cap = 0;
struct dictent *dict = 0;
long output_check = 0;

struct obj *obj_new(int type) {
    struct obj *o = (struct obj *) malloc(sizeof(struct obj));
    o->type = type;
    o->ival = 0;
    o->sval = 0;
    o->elems = 0;
    o->len = 0;
    return o;
}

struct obj *obj_int(long v) {
    struct obj *o = obj_new(T_INT);
    o->ival = v;
    return o;
}

struct obj *obj_str(char *s) {
    struct obj *o = obj_new(T_STR);
    o->sval = s;
    o->len = (int) strlen(s);
    return o;
}

void push(struct obj *o) {
    if (sp >= stack_cap) {
        stack_cap = stack_cap == 0 ? 64 : stack_cap * 2;
        stack = (struct obj **) realloc(stack, stack_cap * sizeof(struct obj *));
    }
    stack[sp++] = o;
}

struct obj *pop(void) {
    if (sp == 0) {
        putstr("stack underflow\n");
        abort();
    }
    return stack[--sp];
}

/* ---- operators ---------------------------------------------------- */

void op_add(void) {
    struct obj *b = pop();
    struct obj *a = pop();
    push(obj_int(a->ival + b->ival));
}

void op_sub(void) {
    struct obj *b = pop();
    struct obj *a = pop();
    push(obj_int(a->ival - b->ival));
}

void op_mul(void) {
    struct obj *b = pop();
    struct obj *a = pop();
    push(obj_int(a->ival * b->ival));
}

void op_dup(void) {
    struct obj *a = pop();
    push(a);
    push(a);
}

void op_exch(void) {
    struct obj *b = pop();
    struct obj *a = pop();
    push(b);
    push(a);
}

void op_pop(void) {
    pop();
}

void op_concat(void) {
    struct obj *b = pop();
    struct obj *a = pop();
    char *s = (char *) malloc(a->len + b->len + 1);
    memcpy(s, a->sval, a->len);
    memcpy(s + a->len, b->sval, b->len);
    s[a->len + b->len] = 0;
    push(obj_str(s));
}

void op_length(void) {
    struct obj *a = pop();
    if (a->type == T_INT) push(obj_int(0));
    else push(obj_int(a->len));
}

void op_def(void) {
    struct obj *val = pop();
    struct obj *name = pop();
    struct dictent *e = (struct dictent *) malloc(sizeof(struct dictent));
    e->name = name->sval;
    e->val = val;
    e->next = dict;
    dict = e;
}

void op_load(void) {
    struct obj *name = pop();
    struct dictent *e = dict;
    while (e) {
        if (strcmp(e->name, name->sval) == 0) {
            push(e->val);
            return;
        }
        e = e->next;
    }
    push(obj_int(0));
}

void op_print(void) {
    struct obj *a = pop();
    if (a->type == T_INT) {
        output_check = (output_check * 31 + a->ival) & 0xffffff;
    } else if (a->type == T_STR) {
        char *s = a->sval;
        while (*s) {
            output_check = (output_check * 31 + *s) & 0xffffff;
            s++;
        }
    } else {
        output_check = (output_check * 31 + a->len) & 0xffffff;
    }
}

void op_index(void) {
    struct obj *n = pop();
    struct obj *arr = pop();
    if (arr->type == T_ARR && n->ival >= 0 && n->ival < arr->len) {
        push(arr->elems[n->ival]);
    } else {
        push(obj_int(-1));
    }
}

void op_sum(void) {
    /* sum the elements of an array object */
    struct obj *arr = pop();
    long s = 0;
    int i;
    for (i = 0; i < arr->len; i++) {
        if (arr->elems[i]->type == T_INT) s += arr->elems[i]->ival;
    }
    push(obj_int(s));
}

struct opdef {
    char *name;
    void (*fn)(void);
};

struct opdef ops[13] = {
    {"add", op_add},
    {"sub", op_sub},
    {"mul", op_mul},
    {"dup", op_dup},
    {"exch", op_exch},
    {"pop", op_pop},
    {"concat", op_concat},
    {"length", op_length},
    {"def", op_def},
    {"load", op_load},
    {"print", op_print},
    {"index", op_index},
    {"sum", op_sum}
};

/* ---- tokenizer ----------------------------------------------------- */

int tk_type;          /* 0 eof, 1 int, 2 name, 3 string, 4 '[', 5 ']', 6 '/' name */
long tk_ival;
char tk_text[64];

int next_token(void) {
    int c = getchar();
    int n = 0;
    while (c == ' ' || c == '\n' || c == '\t') c = getchar();
    if (c == -1) { tk_type = 0; return 0; }
    if (c == '[') { tk_type = 4; return 1; }
    if (c == ']') { tk_type = 5; return 1; }
    if (c >= '0' && c <= '9') {
        tk_ival = 0;
        while (c >= '0' && c <= '9') {
            tk_ival = tk_ival * 10 + (c - '0');
            c = getchar();
        }
        tk_type = 1;
        return 1;
    }
    if (c == '(') {
        c = getchar();
        while (c != ')' && c != -1 && n < 63) {
            tk_text[n++] = (char) c;
            c = getchar();
        }
        tk_text[n] = 0;
        tk_type = 3;
        return 1;
    }
    if (c == '/') {
        c = getchar();
        while (c > ' ' && c != -1 && n < 63) {
            tk_text[n++] = (char) c;
            c = getchar();
        }
        tk_text[n] = 0;
        tk_type = 6;
        return 1;
    }
    while (c > ' ' && c != -1 && n < 63) {
        tk_text[n++] = (char) c;
        c = getchar();
    }
    tk_text[n] = 0;
    tk_type = 2;
    return 1;
}

char *heap_str(char *s) {
    char *d = (char *) malloc(strlen(s) + 1);
    strcpy(d, s);
    return d;
}

int run_name(char *name) {
    int i;
    for (i = 0; i < 13; i++) {
        if (strcmp(ops[i].name, name) == 0) {
            ops[i].fn();
            return 1;
        }
    }
    /* unknown name: load from dict */
    push(obj_str(heap_str(name)));
    op_load();
    return 1;
}

int marks[32];
int nmarks = 0;

int main(void) {
    while (next_token()) {
        if (tk_type == 1) {
            push(obj_int(tk_ival));
        } else if (tk_type == 3) {
            push(obj_str(heap_str(tk_text)));
        } else if (tk_type == 6) {
            push(obj_str(heap_str(tk_text)));
        } else if (tk_type == 4) {
            marks[nmarks++] = sp;
        } else if (tk_type == 5) {
            int start = marks[--nmarks];
            int n = sp - start;
            struct obj *arr = obj_new(T_ARR);
            int i;
            arr->elems = (struct obj **) malloc((n > 0 ? n : 1) * sizeof(struct obj *));
            arr->len = n;
            for (i = 0; i < n; i++) arr->elems[i] = stack[start + i];
            sp = start;
            push(arr);
        } else if (tk_type == 2) {
            run_name(tk_text);
        }
    }
    putstr("gs ");
    putint(output_check);
    putstr(" depth ");
    putint(sp);
    putchar('\n');
    return 0;
}
"#;

/// Generates a deterministic PostScript-ish program of roughly
/// `statements` statements.
pub fn input(statements: u32) -> Vec<u8> {
    let mut seed: u64 = 0x853c49e6748fea9b;
    let mut next = || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 33) as u32
    };
    let mut out = String::new();
    for i in 0..statements {
        match next() % 7 {
            0 => {
                let a = next() % 10_000;
                let b = next() % 10_000;
                out.push_str(&format!("{a} {b} add print\n"));
            }
            1 => {
                let a = next() % 1000;
                out.push_str(&format!("{a} dup mul print\n"));
            }
            2 => {
                out.push_str(&format!(
                    "(w{}) (x{}) concat dup length print print\n",
                    next() % 50,
                    next() % 50
                ));
            }
            3 => {
                let n = 2 + next() % 5;
                out.push('[');
                for _ in 0..n {
                    out.push_str(&format!(" {}", next() % 100));
                }
                out.push_str(" ] sum print\n");
            }
            4 => {
                out.push_str(&format!("/v{} {} def\n", i % 40, next() % 500));
            }
            5 => {
                out.push_str(&format!("(v{}) load print\n", i % 40));
            }
            _ => {
                let n = 2 + next() % 4;
                out.push('[');
                for _ in 0..n {
                    out.push_str(&format!(" {}", next() % 100));
                }
                out.push_str(&format!(" ] {} index print\n", next() % n));
            }
        }
    }
    out.into_bytes()
}
