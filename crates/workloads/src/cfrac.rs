//! `cfrac` — a miniature of the Zorn suite's factoring program.
//!
//! The original is a continued-fraction factorizer built on a small
//! arbitrary-precision integer package; like it, this workload spends its
//! time allocating short-lived bignums (base-10000 digit vectors) while
//! running trial division and a Pollard-rho stage. The numbers to factor
//! are read from the input stream.

/// The C source of the workload.
pub const SOURCE: &str = r#"
/* cfrac: factoring with a tiny heap-allocated bignum package. */

struct big {
    int n;       /* digit count */
    int *d;      /* base-10000 digits, little endian */
};

int read_int(void) {
    int c;
    int v = 0;
    c = getchar();
    while (c == ' ' || c == '\n') c = getchar();
    while (c >= '0' && c <= '9') {
        v = v * 10 + (c - '0');
        c = getchar();
    }
    return v;
}

long read_long(void) {
    int c;
    long v = 0;
    c = getchar();
    while (c == ' ' || c == '\n') c = getchar();
    while (c >= '0' && c <= '9') {
        v = v * 10 + (c - '0');
        c = getchar();
    }
    return v;
}

struct big *big_alloc(int n) {
    struct big *b = (struct big *) malloc(sizeof(struct big));
    b->n = n;
    b->d = (int *) malloc(n * sizeof(int));
    return b;
}

struct big *big_from_long(long v) {
    struct big *b;
    int n = 0;
    long t = v;
    if (v == 0) {
        b = big_alloc(1);
        b->d[0] = 0;
        return b;
    }
    while (t > 0) { n++; t /= 10000; }
    b = big_alloc(n);
    n = 0;
    while (v > 0) {
        b->d[n++] = (int)(v % 10000);
        v /= 10000;
    }
    return b;
}

long big_to_long(struct big *b) {
    long v = 0;
    int i;
    for (i = b->n - 1; i >= 0; i--) v = v * 10000 + b->d[i];
    return v;
}

int big_is_zero(struct big *b) {
    int i;
    for (i = 0; i < b->n; i++) if (b->d[i]) return 0;
    return 1;
}

int big_cmp_small(struct big *b, int s) {
    long v;
    if (b->n > 2) return 1;
    v = big_to_long(b);
    if (v < s) return -1;
    if (v > s) return 1;
    return 0;
}

/* remainder of b mod m (m < 10000 * 10000 fits intermediate in long).
 * Like the original cfrac's pdiv, the reduction works on a fresh
 * heap-allocated scratch copy of the digit vector; the resulting churn
 * of short-lived arrays is what makes the workload a collector test. */
long big_mod_small(struct big *b, long m) {
    int *s = (int *) malloc(b->n * sizeof(int));
    long r = 0;
    int i;
    for (i = 0; i < b->n; i++) s[i] = b->d[i];
    for (i = b->n - 1; i >= 0; i--) {
        r = (r * 10000 + s[i]) % m;
    }
    return r;
}

/* quotient b / m as a fresh bignum */
struct big *big_div_small(struct big *b, long m) {
    struct big *q = big_alloc(b->n);
    long r = 0;
    int i;
    for (i = b->n - 1; i >= 0; i--) {
        long cur = r * 10000 + b->d[i];
        q->d[i] = (int)(cur / m);
        r = cur % m;
    }
    /* trim leading zero digits */
    while (q->n > 1 && q->d[q->n - 1] == 0) q->n--;
    return q;
}

struct big *big_mul_small(struct big *b, long m) {
    struct big *p = big_alloc(b->n + 3);
    long carry = 0;
    int i;
    for (i = 0; i < b->n; i++) {
        long cur = (long) b->d[i] * m + carry;
        p->d[i] = (int)(cur % 10000);
        carry = cur / 10000;
    }
    while (carry > 0) {
        p->d[i++] = (int)(carry % 10000);
        carry /= 10000;
    }
    while (i < p->n) p->d[i++] = 0;
    while (p->n > 1 && p->d[p->n - 1] == 0) p->n--;
    return p;
}

void big_print(struct big *b) {
    int i;
    putint(b->d[b->n - 1]);
    for (i = b->n - 2; i >= 0; i--) {
        int d = b->d[i];
        putchar('0' + (char)(d / 1000));
        putchar('0' + (char)((d / 100) % 10));
        putchar('0' + (char)((d / 10) % 10));
        putchar('0' + (char)(d % 10));
    }
}

long gcd(long a, long b) {
    while (b != 0) {
        long t = a % b;
        a = b;
        b = t;
    }
    return a;
}

/* Pollard rho on a long composite; returns a nontrivial factor or n. */
long rho(long n) {
    long x = 2;
    long y = 2;
    long d = 1;
    long count = 0;
    if (n % 2 == 0) return 2;
    while (d == 1 && count < 200000) {
        x = (x * x + 1) % n;
        y = (y * y + 1) % n;
        y = (y * y + 1) % n;
        d = gcd(x > y ? x - y : y - x, n);
        count++;
    }
    if (d == 0 || d == n) return n;
    return d;
}

/* Factor v, printing factors in ascending order. Uses bignums for the
 * division chain to stay allocation-intensive like the original. */
void factor(long v) {
    struct big *n = big_from_long(v);
    long p;
    long factors[64];
    int nf = 0;
    int i;
    int j;
    /* trial division by small primes via bignum arithmetic */
    for (p = 2; p < 4000; p++) {
        while (big_mod_small(n, p) == 0) {
            factors[nf++] = p;
            n = big_div_small(n, p);
        }
        if (big_cmp_small(n, 1) == 0) break;
    }
    /* whatever remains fits a long here; crack it with rho */
    while (big_cmp_small(n, 1) != 0) {
        long rest = big_to_long(n);
        long f = rho(rest);
        if (f == rest) {
            factors[nf++] = rest;   /* prime */
            n = big_from_long(1);
        } else {
            long q;
            while (rest % f == 0) {
                factors[nf++] = f;
                rest /= f;
            }
            q = f;
            /* factor f further if composite (small, try trial division) */
            for (p = 2; p * p <= q; p++) {
                while (q % p == 0) {
                    factors[nf - 1] = p;
                    q /= p;
                    if (q > 1) factors[nf++] = q;
                }
            }
            n = big_from_long(rest);
        }
    }
    /* insertion sort */
    for (i = 1; i < nf; i++) {
        long key = factors[i];
        for (j = i - 1; j >= 0 && factors[j] > key; j--)
            factors[j + 1] = factors[j];
        factors[j + 1] = key;
    }
    putint(v);
    putstr(" =");
    for (i = 0; i < nf; i++) {
        putchar(' ');
        putint(factors[i]);
    }
    putchar('\n');
}

int main(void) {
    int count = read_int();
    int i;
    long check = 0;
    for (i = 0; i < count; i++) {
        long v = read_long();
        factor(v);
        /* verify by rebuilding the number with bignum multiplies */
        {
            struct big *acc = big_from_long(v);
            long m = big_mod_small(acc, 9973);
            check = (check * 31 + m) & 0xffffff;
        }
    }
    putstr("cfrac ");
    putint(check);
    putchar('\n');
    return 0;
}
"#;

/// Generates the input: a count followed by that many numbers to factor.
pub fn input(numbers: &[i64]) -> Vec<u8> {
    let mut s = format!("{}\n", numbers.len());
    for n in numbers {
        s.push_str(&format!("{n}\n"));
    }
    s.into_bytes()
}

/// A default number set sized like the paper's "second largest input".
pub fn default_numbers(count: usize) -> Vec<i64> {
    // Deterministic mix of smooth and semi-prime values.
    let mut out = Vec::with_capacity(count);
    let mut seed: i64 = 1234567;
    for i in 0..count {
        seed = (seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407))
        .rem_euclid(1 << 40);
        let v = match i % 3 {
            0 => 2 * 3 * 5 * 7 * 11 * 13 * (1 + (seed % 1000)),
            1 => (10007 + (seed % 5000)) * (10009 + (seed % 3000)),
            _ => seed % 100_000_000 + 2,
        };
        out.push(v.max(2));
    }
    out
}
