//! `gawk` — a miniature of the awk interpreter workload.
//!
//! Reads lines, splits them into fields, tallies word frequencies in a
//! chained hash table and sums a numeric column — the inner loops of the
//! classic `{ count[$1]++; sum += $2 }` program.
//!
//! **Faithfully buggy**: like gawk 2.11 in the paper, it indulges in the
//! "common bug (sometimes referred to incorrectly as a 'technique')" of
//! representing a 1-indexed array as a pointer one element *before* a heap
//! array (`fields - 1`). The program runs correctly without checking;
//! under the checking-mode preprocessor it "immediately and correctly
//! detect[s] a pointer arithmetic error" — the paper's `<fails>` cell.

/// The C source of the workload.
pub const SOURCE: &str = r#"
/* mini-gawk: { count[$1]++; sum += $2 } END { report } */

struct entry {
    char *key;
    long count;
    struct entry *next;
};

struct entry *table[128];

long hash_str(char *s) {
    long h = 5381;
    while (*s) {
        h = h * 33 + *s++;
        h = h & 0x7fffff;
    }
    return h;
}

char *copy_str(char *s) {
    char *d = (char *) malloc(strlen(s) + 1);
    strcpy(d, s);
    return d;
}

void tally(char *word) {
    long b = hash_str(word) % 128;
    struct entry *e = table[b];
    while (e) {
        if (strcmp(e->key, word) == 0) {
            e->count++;
            return;
        }
        e = e->next;
    }
    e = (struct entry *) malloc(sizeof(struct entry));
    e->key = copy_str(word);
    e->count = 1;
    e->next = table[b];
    table[b] = e;
}

long to_num(char *s) {
    long v = 0;
    while (*s >= '0' && *s <= '9') {
        v = v * 10 + (*s - '0');
        s++;
    }
    return v;
}

/* Reads one line into a fresh heap buffer; returns 0 at EOF. */
char *get_line(void) {
    char *buf = (char *) malloc(256);
    int n = 0;
    int c = getchar();
    if (c == -1) return 0;
    while (c != -1 && c != '\n' && n < 255) {
        buf[n++] = (char) c;
        c = getchar();
    }
    buf[n] = 0;
    return buf;
}

/* Splits `line` in place; returns the number of fields. The field table
 * is heap allocated and then — the bug — addressed 1-based through a
 * pointer placed one element before it. */
int split(char *line, char ***out) {
    char **fields = (char **) malloc(16 * sizeof(char *));
    int nf = 0;
    char *p = line;
    while (*p && nf < 16) {
        while (*p == ' ') *p++ = 0;
        if (*p == 0) break;
        fields[nf++] = p;
        while (*p && *p != ' ') p++;
    }
    *out = fields;
    return nf;
}

int main(void) {
    long sum = 0;
    long lines = 0;
    long words = 0;
    long i;
    char *line;
    while ((line = get_line()) != 0) {
        char **fields;
        char **f;
        int nf = split(line, &fields);
        if (nf == 0) continue;
        /* awk's $1..$NF are 1-based: fake it with pointer arithmetic.
         * This leaves the object and is exactly what the paper's checker
         * catches in gawk. */
        f = fields - 1;
        lines++;
        for (i = 1; i <= nf; i++) {
            if (i == 1) {
                tally(f[i]);
            }
            if (i == 2) {
                sum += to_num(f[i]);
            }
            words++;
        }
    }
    /* END block: report in bucket order. */
    {
        long maxc = 0;
        char *maxw = "";
        long distinct = 0;
        for (i = 0; i < 128; i++) {
            struct entry *e = table[i];
            while (e) {
                distinct++;
                if (e->count > maxc) {
                    maxc = e->count;
                    maxw = e->key;
                }
                e = e->next;
            }
        }
        putstr("lines ");
        putint(lines);
        putstr(" words ");
        putint(words);
        putstr(" sum ");
        putint(sum);
        putstr(" distinct ");
        putint(distinct);
        putstr(" top ");
        putstr(maxw);
        putstr(" x");
        putint(maxc);
        putchar('\n');
    }
    return 0;
}
"#;

/// Generates a deterministic input of `lines` lines of `word number word…`
/// records, like the paper's benchmark inputs.
pub fn input(lines: u32) -> Vec<u8> {
    const WORDS: &[&str] = &[
        "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel", "india",
        "juliet", "kilo", "lima", "mike", "november", "oscar", "papa",
    ];
    let mut seed: u64 = 0x9e3779b97f4a7c15;
    let mut next = || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 33) as u32
    };
    let mut out = String::new();
    for _ in 0..lines {
        let w1 = WORDS[(next() as usize) % WORDS.len()];
        let n = next() % 1000;
        let w2 = WORDS[(next() as usize) % WORDS.len()];
        out.push_str(w1);
        out.push(' ');
        out.push_str(&n.to_string());
        out.push(' ');
        out.push_str(w2);
        out.push('\n');
    }
    out.into_bytes()
}
