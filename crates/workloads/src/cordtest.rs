//! `cordtest` — a miniature of the paper's "cord" string package test.
//!
//! The paper: "5 Iterations of the test normally distributed with our
//! 'cord' string package. This was run with our garbage collector."
//! Cords are immutable balanced-ish concatenation trees over character
//! arrays; the test builds large cords from words, takes substrings,
//! flattens, fetches characters, and hashes — all heavily allocating and
//! pointer-chasing, like the original.
//!
//! The number of iterations is read from the input stream.

/// The C source of the workload.
pub const SOURCE: &str = r#"
/* cordtest: rope-like immutable strings over the collector. */

struct cord {
    int len;
    int depth;
    char *leaf;          /* non-null for leaf nodes */
    struct cord *left;
    struct cord *right;
};

int read_int(void) {
    int c;
    int v = 0;
    c = getchar();
    while (c == ' ' || c == '\n') c = getchar();
    while (c >= '0' && c <= '9') {
        v = v * 10 + (c - '0');
        c = getchar();
    }
    return v;
}

char *copy_str(char *s) {
    char *d = (char *) malloc(strlen(s) + 1);
    strcpy(d, s);
    return d;
}

struct cord *cord_leaf(char *s) {
    struct cord *c = (struct cord *) malloc(sizeof(struct cord));
    c->len = (int) strlen(s);
    c->depth = 0;
    c->leaf = s;
    c->left = 0;
    c->right = 0;
    return c;
}

int cord_depth(struct cord *c) {
    if (c == 0) return 0;
    return c->depth;
}

int cord_len(struct cord *c) {
    if (c == 0) return 0;
    return c->len;
}

struct cord *cord_cat(struct cord *a, struct cord *b) {
    struct cord *c;
    int da;
    int db;
    if (a == 0) return b;
    if (b == 0) return a;
    c = (struct cord *) malloc(sizeof(struct cord));
    c->len = a->len + b->len;
    da = cord_depth(a);
    db = cord_depth(b);
    c->depth = 1 + (da > db ? da : db);
    c->leaf = 0;
    c->left = a;
    c->right = b;
    return c;
}

int cord_fetch(struct cord *c, int i) {
    while (c->leaf == 0) {
        if (i < c->left->len) {
            c = c->left;
        } else {
            i -= c->left->len;
            c = c->right;
        }
    }
    return c->leaf[i];
}

void cord_flatten_into(struct cord *c, char *buf) {
    if (c == 0) return;
    if (c->leaf) {
        memcpy(buf, c->leaf, c->len);
        return;
    }
    cord_flatten_into(c->left, buf);
    cord_flatten_into(c->right, buf + c->left->len);
}

char *cord_flatten(struct cord *c) {
    char *buf = (char *) malloc(cord_len(c) + 1);
    cord_flatten_into(c, buf);
    buf[cord_len(c)] = 0;
    return buf;
}

/* Substring as a new tree sharing leaves where possible. */
struct cord *cord_substr(struct cord *c, int start, int n) {
    char *piece;
    char *flat;
    int i;
    if (n <= 0 || c == 0) return 0;
    if (start < 0) { n += start; start = 0; }
    if (start >= c->len) return 0;
    if (start + n > c->len) n = c->len - start;
    if (c->leaf) {
        piece = (char *) malloc(n + 1);
        flat = c->leaf + start;
        for (i = 0; i < n; i++) piece[i] = flat[i];
        piece[n] = 0;
        return cord_leaf(piece);
    }
    if (start + n <= c->left->len)
        return cord_substr(c->left, start, n);
    if (start >= c->left->len)
        return cord_substr(c->right, start - c->left->len, n);
    return cord_cat(
        cord_substr(c->left, start, c->left->len - start),
        cord_substr(c->right, 0, start + n - c->left->len));
}

/* Rebalance by flattening runs deeper than a threshold. */
struct cord *cord_balance(struct cord *c) {
    if (c == 0) return 0;
    if (cord_depth(c) <= 12) return c;
    return cord_leaf(cord_flatten(c));
}

long cord_hash(struct cord *c) {
    long h = 5381;
    int i;
    int n = cord_len(c);
    for (i = 0; i < n; i++) {
        h = h * 33 + cord_fetch(c, i);
        h = h & 0xffffff;
    }
    return h;
}

long flat_hash(char *s) {
    long h = 5381;
    while (*s) {
        h = h * 33 + *s++;
        h = h & 0xffffff;
    }
    return h;
}

/* Lexicographic comparison without flattening (CORD_cmp). */
int cord_cmp(struct cord *a, struct cord *b) {
    int la = cord_len(a);
    int lb = cord_len(b);
    int n = la < lb ? la : lb;
    int i;
    for (i = 0; i < n; i++) {
        int ca = cord_fetch(a, i);
        int cb = cord_fetch(b, i);
        if (ca != cb) return ca < cb ? -1 : 1;
    }
    if (la == lb) return 0;
    return la < lb ? -1 : 1;
}

/* First occurrence of ch at or after `from` (CORD_chr); -1 if absent. */
int cord_chr(struct cord *c, int from, int ch) {
    int n = cord_len(c);
    int i;
    for (i = from; i < n; i++) {
        if (cord_fetch(c, i) == ch) return i;
    }
    return -1;
}

/* Naive substring search (CORD_str); -1 if absent. */
int cord_str(struct cord *hay, char *needle) {
    int n = cord_len(hay);
    int m = (int) strlen(needle);
    int i;
    int j;
    if (m == 0) return 0;
    for (i = 0; i + m <= n; i++) {
        for (j = 0; j < m; j++) {
            if (cord_fetch(hay, i + j) != needle[j]) break;
        }
        if (j == m) return i;
    }
    return -1;
}

/* Structure-reversing cord (leaves reversed in place, children swapped). */
struct cord *cord_reverse(struct cord *c) {
    if (c == 0) return 0;
    if (c->leaf) {
        int n = c->len;
        char *r = (char *) malloc(n + 1);
        int i;
        for (i = 0; i < n; i++) r[i] = c->leaf[n - 1 - i];
        r[n] = 0;
        return cord_leaf(r);
    }
    return cord_cat(cord_reverse(c->right), cord_reverse(c->left));
}

char *word_for(int i) {
    char *w = (char *) malloc(12);
    int k = 0;
    w[k++] = 'w';
    w[k++] = (char)('a' + i % 26);
    w[k++] = (char)('a' + (i / 26) % 26);
    w[k++] = (char)('a' + (i / 676) % 26);
    w[k] = 0;
    return w;
}

int main(void) {
    int iters = read_int();
    int words = read_int();
    int iter;
    long checksum = 0;
    for (iter = 0; iter < iters; iter++) {
        struct cord *c = 0;
        struct cord *mid;
        struct cord *rev;
        char *flat;
        int i;
        /* Build a big cord out of generated words. */
        for (i = 0; i < words; i++) {
            c = cord_cat(c, cord_leaf(word_for(i + iter)));
            if (i % 16 == 15) c = cord_balance(c);
        }
        /* Substring walk. */
        mid = cord_substr(c, cord_len(c) / 4, cord_len(c) / 2);
        rev = cord_cat(mid, cord_substr(c, 0, 40));
        /* Flatten and compare hashes computed two ways. */
        flat = cord_flatten(rev);
        if (flat_hash(flat) != cord_hash(rev)) {
            putstr("HASH MISMATCH\n");
            abort();
        }
        checksum = (checksum * 31 + cord_hash(rev)) & 0xffffff;
        /* Random fetches. */
        for (i = 0; i < 100; i++) {
            checksum = (checksum + cord_fetch(c, (i * 37) % cord_len(c))) & 0xffffff;
        }
        /* Comparison, search, and reversal. */
        {
            struct cord *r = cord_reverse(mid);
            struct cord *rr = cord_reverse(r);
            if (cord_cmp(mid, rr) != 0) {
                putstr("REVERSE MISMATCH\n");
                abort();
            }
            if (cord_cmp(mid, r) != 0) {
                checksum = (checksum * 7 + 13) & 0xffffff;
            }
            checksum = (checksum + cord_chr(c, iter, 'w')) & 0xffffff;
            checksum = (checksum + cord_str(c, "waa")) & 0xffffff;
            checksum = (checksum * 31 + cord_cmp(c, mid)) & 0xffffff;
        }
    }
    putstr("cordtest ");
    putint(checksum);
    putchar('\n');
    return 0;
}
"#;

/// Generates the input stream (iteration and word counts).
pub fn input(iters: u32, words: u32) -> Vec<u8> {
    format!("{iters} {words}\n").into_bytes()
}
