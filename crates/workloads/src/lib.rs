//! # workloads — the paper's benchmark programs, miniaturized
//!
//! The paper measures "a small collection of small-to-medium-sized C
//! programs, mostly drawn from the Zorn benchmark suite … all of these
//! programs are very pointer and allocation intensive". The originals are
//! not redistributable here, so this crate carries four miniature
//! stand-ins written in the supported C subset that preserve the
//! behaviours the paper's measurements depend on:
//!
//! * [`cordtest`] — the cord (rope) string package and its test;
//! * [`cfrac`] — factoring over a heap-allocated bignum package;
//! * [`gawk`] — field splitting + hash tallying, **including the
//!   one-before-the-array pointer bug** the paper's checker caught
//!   (the `<fails>` table cell);
//! * [`gs`] — a PostScript-flavoured object/stack interpreter with
//!   prepended object headers and a function-pointer dispatch table.
//!
//! Every program reads its scale parameters from the input stream, so one
//! source serves both test-sized and paper-sized runs.

#![warn(missing_docs)]

pub mod cfrac;
pub mod cordtest;
pub mod gawk;
pub mod gs;

/// How big a run to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Tiny inputs for unit tests (sub-second interpreted runs).
    Tiny,
    /// The scale used by the table-regeneration harness.
    #[default]
    Paper,
}

/// A named benchmark: C source plus input generator.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Program name as it appears in the paper's tables.
    pub name: &'static str,
    /// C-subset source text.
    pub source: &'static str,
    /// Whether the checking-mode run is expected to abort with a pointer
    /// arithmetic error (the paper's gawk `<fails>` cell).
    pub checked_fails: bool,
    /// Input stream for the given scale.
    pub input: fn(Scale) -> Vec<u8>,
}

// Paper-scale inputs are sized so every collecting (workload, mode)
// cell crosses the 256 KiB collection threshold at least
// `gcbench::MIN_COLLECTIONS` times — below that, the trajectory's pause
// statistics are a handful of samples and its percentiles are noise.
// The counts are deterministic, so the floor is checked against
// BENCH_gc.json, not tuned per machine.

fn cordtest_input(scale: Scale) -> Vec<u8> {
    match scale {
        Scale::Tiny => cordtest::input(1, 40),
        Scale::Paper => cordtest::input(5, 1800),
    }
}

fn cfrac_input(scale: Scale) -> Vec<u8> {
    // Paper scale is sized so every mode cell crosses the 256 KiB
    // collection threshold well over ten times — with big_mod_small's
    // scratch copies, each number factored churns tens of kilobytes of
    // short-lived digit arrays.
    let numbers = match scale {
        Scale::Tiny => cfrac::default_numbers(3),
        Scale::Paper => cfrac::default_numbers(120),
    };
    cfrac::input(&numbers)
}

fn gawk_input(scale: Scale) -> Vec<u8> {
    match scale {
        Scale::Tiny => gawk::input(30),
        Scale::Paper => gawk::input(6000),
    }
}

fn gs_input(scale: Scale) -> Vec<u8> {
    match scale {
        Scale::Tiny => gs::input(40),
        Scale::Paper => gs::input(18000),
    }
}

/// All four workloads in the paper's table order.
pub fn all() -> Vec<Workload> {
    vec![
        Workload {
            name: "cordtest",
            source: cordtest::SOURCE,
            checked_fails: false,
            input: cordtest_input,
        },
        Workload {
            name: "cfrac",
            source: cfrac::SOURCE,
            checked_fails: false,
            input: cfrac_input,
        },
        Workload {
            name: "gawk",
            source: gawk::SOURCE,
            checked_fails: true,
            input: gawk_input,
        },
        Workload {
            name: "gs",
            source: gs::SOURCE,
            checked_fails: false,
            input: gs_input,
        },
    ]
}

/// Looks a workload up by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}
