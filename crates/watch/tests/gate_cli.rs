//! The regression gate's acceptance contract, end to end through the
//! `bench` binary: a baseline aggregated from three noisy repeats plus
//! seeded budgets must pass a clean candidate, and must fail — nonzero
//! exit, cell named in the diff table — when one microbench cell's
//! `max_pause_ns` is inflated 2×.

use std::path::PathBuf;
use std::process::Command;

/// One synthetic `BENCH_gc.json` run: two matrix cells and one micro
/// cell, with wall-clock fields jittered by `noise_ns` and the micro
/// cell's pause scaled by `inflate_permille`.
fn run_doc(noise_ns: u64, inflate_permille: u64) -> String {
    let micro_pause = 2_000_000 * inflate_permille / 1000 + noise_ns;
    format!(
        "[\n  \
{{\"schema\":\"gc/1\",\"kind\":\"matrix\",\"workload\":\"cfrac\",\"mode\":\"O\",\"collections\":13,\
\"max_pause_ns\":{},\"max_pause_cause\":\"threshold\",\"max_pause_site\":\"factor;big_mod_small;malloc@92:14\"}},\n  \
{{\"schema\":\"gc/1\",\"kind\":\"matrix\",\"workload\":\"cfrac\",\"mode\":\"g\",\"collections\":13,\
\"max_pause_ns\":{}}},\n  \
{{\"schema\":\"gc/1\",\"kind\":\"micro\",\"workload\":\"churn-small\",\"mode\":\"heap-direct\",\"collections\":40,\
\"max_pause_ns\":{micro_pause},\"max_pause_cause\":\"threshold\",\"max_pause_site\":\"micro\",\"mmu_10ms_permille\":620}}\n]\n",
        800_000 + noise_ns,
        900_000 + noise_ns,
    )
}

fn write(dir: &std::path::Path, name: &str, text: &str) -> PathBuf {
    let p = dir.join(name);
    std::fs::write(&p, text).expect("write temp file");
    p
}

fn bench(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bench"))
        .args(args)
        .output()
        .expect("bench binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn gate_passes_clean_rerun_and_fails_doubled_micro_pause() {
    let dir = std::env::temp_dir().join(format!("gcwatch-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    // Baseline: three noisy repeats folded by the same aggregator
    // `tables --bench-json --repeat 3` uses.
    let repeats: Vec<_> = [0u64, 40_000, 90_000]
        .iter()
        .map(|&n| gcwatch::stats::parse_cells(&run_doc(n, 1000)).expect("repeat parses"))
        .collect();
    let baseline = gcwatch::aggregate(&repeats).expect("aggregates");
    assert!(baseline.contains("\"repeats\":3"), "{baseline}");
    assert!(baseline.contains("max_pause_ns_mad"), "{baseline}");
    let base_path = write(&dir, "baseline.json", &baseline);

    // Budgets seeded at 1.5× the aggregated baseline.
    let budgets_path = dir.join("budgets.toml");
    let (ok, _, err) = bench(&[
        "seed-budgets",
        base_path.to_str().unwrap(),
        "--margin-permille",
        "1500",
        "--out",
        budgets_path.to_str().unwrap(),
    ]);
    assert!(ok, "seed-budgets failed: {err}");

    // A clean re-run — fresh wall-clock jitter, same behavior — passes.
    let clean = write(&dir, "clean.json", &run_doc(60_000, 1000));
    let (ok, table, err) = bench(&[
        "compare",
        base_path.to_str().unwrap(),
        clean.to_str().unwrap(),
        "--budgets",
        budgets_path.to_str().unwrap(),
    ]);
    assert!(ok, "clean candidate must pass:\n{table}{err}");
    assert!(table.contains("gate: PASS"), "{table}");

    // 2× inflation on the micro cell: nonzero exit, cell named.
    let inflated = write(&dir, "inflated.json", &run_doc(60_000, 2000));
    let (ok, table, _) = bench(&[
        "compare",
        base_path.to_str().unwrap(),
        inflated.to_str().unwrap(),
        "--budgets",
        budgets_path.to_str().unwrap(),
    ]);
    assert!(!ok, "doubled pause must fail the gate:\n{table}");
    assert!(
        table.contains("FAIL churn-small/heap-direct"),
        "diff table names the inflated cell:\n{table}"
    );
    assert!(table.contains("gate: FAIL"), "{table}");
    // The untouched matrix cells still read ok.
    assert!(table.contains("cfrac/O"), "{table}");

    // Budgets-only mode (CI shape): same verdicts without a baseline.
    let (ok, _, _) = bench(&[
        "compare",
        "-",
        clean.to_str().unwrap(),
        "--budgets",
        budgets_path.to_str().unwrap(),
    ]);
    assert!(ok, "budgets-only clean pass");
    let (ok, table, _) = bench(&[
        "compare",
        "-",
        inflated.to_str().unwrap(),
        "--budgets",
        budgets_path.to_str().unwrap(),
    ]);
    assert!(!ok && table.contains("churn-small/heap-direct"), "{table}");

    std::fs::remove_dir_all(&dir).ok();
}

/// A run missing a cell the budgets gate, or sprouting a cell nothing
/// gates, must fail loudly — `--allow-new-cells` accepts only the
/// latter, for the run where the matrix intentionally grew.
#[test]
fn gate_names_missing_and_new_cells_and_honors_allow_new_cells() {
    let dir = std::env::temp_dir().join(format!("gcwatch-cells-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    let base_path = write(&dir, "baseline.json", &run_doc(0, 1000));
    let budgets_path = dir.join("budgets.toml");
    let (ok, _, err) = bench(&[
        "seed-budgets",
        base_path.to_str().unwrap(),
        "--out",
        budgets_path.to_str().unwrap(),
    ]);
    assert!(ok, "seed-budgets failed: {err}");

    // Candidate silently drops the micro cell: hard failure naming it,
    // in both baseline and budgets-only mode, flag or no flag.
    let full = run_doc(10_000, 1000);
    let micro_line = full
        .lines()
        .find(|l| l.contains("\"kind\":\"micro\""))
        .expect("doc has the micro cell")
        .trim_end_matches(',')
        .to_string();
    let mut lines: Vec<String> = full
        .lines()
        .filter(|l| !l.contains("\"kind\":\"micro\""))
        .map(str::to_string)
        .collect();
    let last_cell = lines.len() - 2; // the cell before the closing "]"
    lines[last_cell] = lines[last_cell].trim_end_matches(',').to_string();
    let dropped = lines.join("\n") + "\n";
    let dropped_path = write(&dir, "dropped.json", &dropped);
    for extra in [&[][..], &["--allow-new-cells"][..]] {
        let mut args = vec![
            "compare",
            "-",
            dropped_path.to_str().unwrap(),
            "--budgets",
            budgets_path.to_str().unwrap(),
        ];
        args.extend_from_slice(extra);
        let (ok, table, _) = bench(&args);
        assert!(!ok, "skipped cell must fail (extra={extra:?}):\n{table}");
        assert!(
            table.contains("FAIL churn-small/heap-direct")
                && table.contains("missing from candidate"),
            "{table}"
        );
    }

    // Candidate grows a cell nothing gates: fails by default, passes
    // with --allow-new-cells (and the note still names it).
    let grown = full.replace(
        &micro_line,
        &format!(
            "{micro_line},\n{}",
            micro_line.replace("churn-small", "churn-new")
        ),
    );
    assert_ne!(grown, full, "the grown doc really has an extra cell");
    let grown_path = write(&dir, "grown.json", &grown);
    let (ok, table, _) = bench(&[
        "compare",
        base_path.to_str().unwrap(),
        grown_path.to_str().unwrap(),
        "--budgets",
        budgets_path.to_str().unwrap(),
    ]);
    assert!(!ok, "ungated new cell must fail:\n{table}");
    assert!(
        table.contains("FAIL churn-new/heap-direct"),
        "new cell named:\n{table}"
    );
    let (ok, table, _) = bench(&[
        "compare",
        base_path.to_str().unwrap(),
        grown_path.to_str().unwrap(),
        "--budgets",
        budgets_path.to_str().unwrap(),
        "--allow-new-cells",
    ]);
    assert!(ok, "--allow-new-cells accepts the growth:\n{table}");
    assert!(
        table.contains("note churn-new/heap-direct"),
        "accepted cell still noted:\n{table}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
