//! Perf budgets: per-cell pause ceilings and permille floors (MMU, cache
//! hit rate), plus the noise gate's knobs, in a deliberately tiny TOML
//! subset.
//!
//! The subset is: `#` comments, `[section]` headers (quotes around the
//! section name are stripped, so `["cfrac/O"]` addresses the cell keyed
//! `cfrac/O`), and `key = value` pairs where the value is an unsigned
//! integer or a quoted string. Nothing else — no arrays, no nesting, no
//! dotted keys — because budgets never need more and the repo takes no
//! dependencies.
//!
//! ```toml
//! [gate]
//! k_mad = 5                 # fail beyond median + 5·MAD …
//! rel_slack_permille = 250  # … or +25%, whichever allowance is larger
//! abs_slack_ns = 200000     # never fail a sub-0.2ms absolute wobble
//!
//! ["churn-small/heap-direct"]
//! max_pause_ns = 1500000    # hard ceiling, noise gate or not
//! mmu_10ms_floor_permille = 400
//! ```

use std::collections::BTreeMap;

/// The noise gate's thresholds: a candidate fails against a baseline only
/// beyond `median + max(k_mad·MAD, rel_slack, abs_slack)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// MAD multiplier: how many robust standard-deviations of run-to-run
    /// noise a candidate may exceed the baseline median by.
    pub k_mad: u64,
    /// Relative slack in permille of the baseline median.
    pub rel_slack_permille: u64,
    /// Absolute slack in nanoseconds — the floor under both, so cells
    /// with microsecond pauses are not gated on scheduler jitter.
    pub abs_slack_ns: u64,
}

impl Default for Gate {
    fn default() -> Self {
        Gate {
            k_mad: 5,
            rel_slack_permille: 250,
            abs_slack_ns: 200_000,
        }
    }
}

impl Gate {
    /// The allowance above the baseline median for one cell.
    pub fn allowance(&self, base_median: u64, base_mad: u64) -> u64 {
        (self.k_mad * base_mad)
            .max(base_median * self.rel_slack_permille / 1000)
            .max(self.abs_slack_ns)
    }
}

/// One cell's budget: an optional hard pause ceiling plus floors on
/// permille-valued fields (`mmu_10ms`, `hit_rate`, …).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CellBudget {
    /// Hard ceiling on the cell's `max_pause_ns`; exceeding it fails the
    /// gate regardless of noise.
    pub max_pause_ns: Option<u64>,
    /// Floors keyed by field base name: `("mmu_10ms", 400)` means the
    /// candidate cell's `mmu_10ms_permille` must be ≥ 400, `("hit_rate",
    /// 990)` floors `hit_rate_permille`. A value below its floor fails
    /// the gate.
    pub floors_permille: Vec<(String, u64)>,
}

/// A parsed budgets file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Budgets {
    /// The noise-gate knobs (`[gate]` section; defaults if absent).
    pub gate: Gate,
    /// Per-cell budgets keyed `workload/mode`.
    pub cells: BTreeMap<String, CellBudget>,
}

/// Parses the TOML subset described in the module docs.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn parse(text: &str) -> Result<Budgets, String> {
    let mut budgets = Budgets::default();
    let mut section: Option<String> = None;
    for (ln, raw) in text.lines().enumerate() {
        let line = match raw.find('#') {
            Some(i) if !raw[..i].contains('"') => &raw[..i],
            _ => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let name = name.trim().trim_matches('"').to_string();
            if name.is_empty() {
                return Err(format!("line {}: empty section name", ln + 1));
            }
            section = Some(name);
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected key = value: {line:?}", ln + 1))?;
        let (key, value) = (key.trim(), value.trim());
        let uint = || -> Result<u64, String> {
            value.parse::<u64>().map_err(|_| {
                format!(
                    "line {}: {key} wants an unsigned integer, got {value:?}",
                    ln + 1
                )
            })
        };
        match section.as_deref() {
            Some("gate") => match key {
                "k_mad" => budgets.gate.k_mad = uint()?,
                "rel_slack_permille" => budgets.gate.rel_slack_permille = uint()?,
                "abs_slack_ns" => budgets.gate.abs_slack_ns = uint()?,
                other => return Err(format!("line {}: unknown gate key {other:?}", ln + 1)),
            },
            Some(cell) => {
                let entry = budgets.cells.entry(cell.to_string()).or_default();
                if key == "max_pause_ns" {
                    entry.max_pause_ns = Some(uint()?);
                } else if let Some(base) = key.strip_suffix("_floor_permille") {
                    if base.is_empty() {
                        return Err(format!("line {}: unknown cell key {key:?}", ln + 1));
                    }
                    entry.floors_permille.push((base.to_string(), uint()?));
                } else {
                    return Err(format!("line {}: unknown cell key {key:?}", ln + 1));
                }
            }
            None => return Err(format!("line {}: key before any [section]", ln + 1)),
        }
    }
    Ok(budgets)
}

/// Renders budgets back to the TOML subset (stable ordering — suitable
/// for committing).
pub fn render(budgets: &Budgets) -> String {
    let mut out = String::new();
    out.push_str("# GC perf budgets — consumed by `bench compare` (gcwatch).\n");
    out.push_str("# Ceilings are wall-clock and machine-dependent; regenerate with\n");
    out.push_str("# `bench seed-budgets` after intentional perf changes.\n\n");
    out.push_str("[gate]\n");
    out.push_str(&format!("k_mad = {}\n", budgets.gate.k_mad));
    out.push_str(&format!(
        "rel_slack_permille = {}\n",
        budgets.gate.rel_slack_permille
    ));
    out.push_str(&format!("abs_slack_ns = {}\n", budgets.gate.abs_slack_ns));
    for (cell, b) in &budgets.cells {
        out.push_str(&format!("\n[\"{cell}\"]\n"));
        if let Some(p) = b.max_pause_ns {
            out.push_str(&format!("max_pause_ns = {p}\n"));
        }
        for (base, floor) in &b.floors_permille {
            out.push_str(&format!("{base}_floor_permille = {floor}\n"));
        }
    }
    out
}

/// Seeds budgets from a measured `BENCH_gc.json` document: every cell
/// that collected at least once gets a `max_pause_ns` ceiling of
/// `observed · margin_permille / 1000`, and cells exporting MMU windows
/// get floors of `observed · 1000 / margin_permille` (i.e. the same
/// margin, inverted, since MMU regressions move *down*).
///
/// # Errors
///
/// Propagates parse errors from the document.
pub fn seed(bench_json: &str, margin_permille: u64) -> Result<Budgets, String> {
    let cells = crate::stats::parse_cells(bench_json)?;
    let mut budgets = Budgets::default();
    for cell in &cells {
        let key = crate::stats::cell_key(cell);
        let collections = cell
            .get("collections")
            .and_then(gctrace::json::JsonValue::as_u64)
            .unwrap_or(0);
        if collections == 0 {
            continue;
        }
        let mut b = CellBudget::default();
        if let Some(p) = cell
            .get("max_pause_ns")
            .and_then(gctrace::json::JsonValue::as_u64)
        {
            b.max_pause_ns = Some((p.max(1) as u128 * margin_permille as u128 / 1000) as u64);
        }
        for (field, _) in cell.iter().filter(|(k, _)| k.starts_with("mmu_")) {
            let Some(base) = field.strip_suffix("_permille") else {
                continue;
            };
            if base.ends_with("_mad") {
                continue;
            }
            if let Some(v) = cell.get(field).and_then(gctrace::json::JsonValue::as_u64) {
                let floor = v * 1000 / margin_permille.max(1);
                b.floors_permille.push((base.to_string(), floor));
            }
        }
        budgets.cells.insert(key, b);
    }
    Ok(budgets)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# top comment
[gate]
k_mad = 4
rel_slack_permille = 100   # ten percent
abs_slack_ns = 50000

["cfrac/O"]
max_pause_ns = 2000000

["churn-small/heap-direct"]
max_pause_ns = 1500000
mmu_10ms_floor_permille = 400
"#;

    #[test]
    fn parse_round_trips_through_render() {
        let b = parse(SAMPLE).expect("parses");
        assert_eq!(b.gate.k_mad, 4);
        assert_eq!(b.gate.abs_slack_ns, 50_000);
        assert_eq!(b.cells.len(), 2);
        assert_eq!(b.cells["cfrac/O"].max_pause_ns, Some(2_000_000));
        assert_eq!(
            b.cells["churn-small/heap-direct"].floors_permille,
            vec![("mmu_10ms".to_string(), 400)]
        );
        let again = parse(&render(&b)).expect("render output parses");
        assert_eq!(b, again);
    }

    #[test]
    fn parse_rejects_garbage_with_line_numbers() {
        assert!(parse("k = 1").unwrap_err().contains("before any"));
        assert!(parse("[gate]\nwat = 1")
            .unwrap_err()
            .contains("unknown gate key"));
        assert!(parse("[\"c/O\"]\nwat = 1")
            .unwrap_err()
            .contains("unknown cell key"));
        let err = parse("[gate]\nk_mad = soon").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn gate_allowance_takes_the_largest_slack() {
        let g = Gate {
            k_mad: 5,
            rel_slack_permille: 100,
            abs_slack_ns: 1000,
        };
        assert_eq!(g.allowance(10_000, 500), 2500); // 5·MAD wins
        assert_eq!(g.allowance(100_000, 10), 10_000); // 10% wins
        assert_eq!(g.allowance(100, 0), 1000); // absolute floor wins
    }

    #[test]
    fn seed_skips_zero_collection_cells_and_inverts_mmu() {
        let doc = "[\n  \
{\"schema\":\"gc/1\",\"kind\":\"matrix\",\"workload\":\"idle\",\"mode\":\"O\",\"collections\":0,\"max_pause_ns\":0},\n  \
{\"schema\":\"gc/1\",\"kind\":\"micro\",\"workload\":\"churn-small\",\"mode\":\"heap-direct\",\
\"collections\":40,\"max_pause_ns\":1000000,\"mmu_10ms_permille\":600}\n]\n";
        let b = seed(doc, 1500).expect("seeds");
        assert!(!b.cells.contains_key("idle/O"));
        let cell = &b.cells["churn-small/heap-direct"];
        assert_eq!(cell.max_pause_ns, Some(1_500_000));
        assert_eq!(cell.floors_permille, vec![("mmu_10ms".to_string(), 400)]);
    }
}
