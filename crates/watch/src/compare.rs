//! The regression verdict: candidate `BENCH_gc.json` vs budgets, and
//! optionally vs a baseline run through the noise gate.
//!
//! Three checks per cell, any failure fails the gate:
//!
//! 1. **Budget ceiling** — `max_pause_ns` above the cell's budgeted
//!    ceiling fails outright. Ceilings are seeded with margin
//!    (`seed-budgets`), so only a real regression crosses one.
//! 2. **Permille floor** — a budgeted `<name>_floor_permille` checks the
//!    candidate's `<name>_permille` field: below the floor fails. MMU
//!    floors (`mmu_10ms_floor_permille`) catch the collector eating more
//!    of the mutator's time; cache floors (`hit_rate_floor_permille`)
//!    catch warm passes that stopped hitting.
//! 3. **Noise gate** (only with a baseline) — the candidate's
//!    `max_pause_ns` may exceed the baseline median by at most
//!    `max(k·MAD, rel_slack, abs_slack)`; see [`crate::budgets::Gate`].
//!    The MAD comes from the baseline's `max_pause_ns_mad` field when the
//!    baseline was aggregated with `--repeat`, else 0 (the relative and
//!    absolute slacks still protect single-run baselines).
//!
//! Cell-set mismatches are **hard failures**, not notes. A cell present
//! in the baseline or the budgets file but missing from the candidate
//! means a workload was silently skipped — the gate cannot vouch for a
//! run it never saw. A candidate cell absent from the baseline (or
//! collecting without a budget) has no ceiling gating it. The matrix
//! does legitimately grow, but exactly once per growth: pass
//! `allow_new_cells` (`--allow-new-cells` on the CLI) to accept new
//! cells for that run and then reseed the budgets. Missing cells fail
//! regardless of the flag.

use crate::budgets::Budgets;
use crate::stats::{cell_key, parse_cells};
use gctrace::json::JsonValue;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One cell's comparison outcome.
#[derive(Debug, Clone)]
pub struct CellVerdict {
    /// `workload/mode` key.
    pub cell: String,
    /// Candidate `max_pause_ns`.
    pub cand_pause: u64,
    /// Baseline median `max_pause_ns`, when a baseline was given and has
    /// the cell.
    pub base_pause: Option<u64>,
    /// Budgeted ceiling, when the budgets file has the cell.
    pub budget: Option<u64>,
    /// Failure descriptions; empty means the cell passed.
    pub failures: Vec<String>,
    /// Non-fatal notes (zero collections, new cells accepted by
    /// `allow_new_cells`).
    pub notes: Vec<String>,
}

/// The whole comparison: per-cell verdicts plus the rendered diff table.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Every candidate cell in document order.
    pub cells: Vec<CellVerdict>,
}

impl Verdict {
    /// True when no cell failed any check.
    pub fn passed(&self) -> bool {
        self.cells.iter().all(|c| c.failures.is_empty())
    }

    /// The failing cells' keys.
    pub fn failing_cells(&self) -> Vec<&str> {
        self.cells
            .iter()
            .filter(|c| !c.failures.is_empty())
            .map(|c| c.cell.as_str())
            .collect()
    }

    /// The human-readable diff table: one row per cell with baseline,
    /// candidate, budget, and verdict columns, followed by failure and
    /// note details.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let key_w = self
            .cells
            .iter()
            .map(|c| c.cell.len())
            .max()
            .unwrap_or(4)
            .max("cell".len());
        let _ = writeln!(
            out,
            "{:key_w$}  {:>14}  {:>14}  {:>14}  verdict",
            "cell", "base max_pause", "cand max_pause", "budget"
        );
        for c in &self.cells {
            let base = c
                .base_pause
                .map_or_else(|| "-".to_string(), |v| v.to_string());
            let budget = c.budget.map_or_else(|| "-".to_string(), |v| v.to_string());
            let verdict = if c.failures.is_empty() { "ok" } else { "FAIL" };
            let _ = writeln!(
                out,
                "{:key_w$}  {:>14}  {:>14}  {:>14}  {}",
                c.cell, base, c.cand_pause, budget, verdict
            );
        }
        for c in &self.cells {
            for f in &c.failures {
                let _ = writeln!(out, "FAIL {}: {f}", c.cell);
            }
            for n in &c.notes {
                let _ = writeln!(out, "note {}: {n}", c.cell);
            }
        }
        let _ = writeln!(
            out,
            "{}",
            if self.passed() {
                "gate: PASS"
            } else {
                "gate: FAIL"
            }
        );
        out
    }
}

fn u(cell: &BTreeMap<String, JsonValue>, key: &str) -> Option<u64> {
    cell.get(key).and_then(JsonValue::as_u64)
}

/// Compares a candidate `BENCH_gc.json` against budgets and an optional
/// baseline document. See the module docs for the checks.
///
/// `allow_new_cells` downgrades the "cell absent from baseline" and
/// "cell collecting without a budget" failures to notes — for the one
/// run where the matrix intentionally grew. Cells *missing* from the
/// candidate fail regardless.
///
/// # Errors
///
/// Returns a message if either document fails to parse or the candidate
/// is empty.
pub fn compare(
    baseline: Option<&str>,
    candidate: &str,
    budgets: &Budgets,
    allow_new_cells: bool,
) -> Result<Verdict, String> {
    let cand_cells = parse_cells(candidate)?;
    if cand_cells.is_empty() {
        return Err("candidate has no cells".into());
    }
    let base_cells: BTreeMap<String, BTreeMap<String, JsonValue>> = match baseline {
        Some(text) => parse_cells(text)?
            .into_iter()
            .map(|c| (cell_key(&c), c))
            .collect(),
        None => BTreeMap::new(),
    };
    let mut seen = Vec::new();
    let mut cells = Vec::new();
    for cand in &cand_cells {
        let key = cell_key(cand);
        seen.push(key.clone());
        let cand_pause = u(cand, "max_pause_ns").unwrap_or(0);
        let mut v = CellVerdict {
            cell: key.clone(),
            cand_pause,
            base_pause: None,
            budget: None,
            failures: Vec::new(),
            notes: Vec::new(),
        };
        let collections = u(cand, "collections").unwrap_or(0);
        if collections == 0 {
            v.notes
                .push("zero collections: pause budgets vacuous for this cell".into());
        }
        if !budgets.cells.is_empty() && !budgets.cells.contains_key(&key) && collections > 0 {
            // Zero-collection cells are exempt: `seed-budgets` never
            // writes ceilings for them, so their absence is expected.
            let what = "new cell: collects but has no budget, so its pauses are ungated";
            if allow_new_cells {
                v.notes
                    .push(format!("{what} (accepted; reseed budgets to cover it)"));
            } else {
                v.failures.push(format!(
                    "{what} (pass --allow-new-cells, then reseed budgets)"
                ));
            }
        }
        if let Some(b) = budgets.cells.get(&key) {
            v.budget = b.max_pause_ns;
            if let Some(ceiling) = b.max_pause_ns {
                if cand_pause > ceiling {
                    v.failures.push(format!(
                        "max_pause_ns {cand_pause} exceeds budget ceiling {ceiling}"
                    ));
                }
            }
            for (base, floor) in &b.floors_permille {
                let field = format!("{base}_permille");
                match u(cand, &field) {
                    Some(got) if got < *floor => v
                        .failures
                        .push(format!("{field} {got} is below floor {floor}")),
                    Some(_) => {}
                    None => v
                        .notes
                        .push(format!("{field} budgeted but not exported by candidate")),
                }
            }
        }
        if let Some(base) = base_cells.get(&key) {
            let base_pause = u(base, "max_pause_ns").unwrap_or(0);
            let base_mad = u(base, "max_pause_ns_mad").unwrap_or(0);
            v.base_pause = Some(base_pause);
            let allowance = budgets.gate.allowance(base_pause, base_mad);
            if cand_pause > base_pause.saturating_add(allowance) {
                v.failures.push(format!(
                    "max_pause_ns {cand_pause} exceeds baseline {base_pause} + allowance {allowance} \
(k_mad={}, mad={base_mad})",
                    budgets.gate.k_mad
                ));
            }
        } else if baseline.is_some() {
            let what = "new cell: absent from baseline, so the noise gate cannot see it";
            if allow_new_cells {
                v.notes.push(format!("{what} (accepted)"));
            } else {
                v.failures.push(format!("{what} (pass --allow-new-cells)"));
            }
        }
        cells.push(v);
    }
    // Cells the baseline or the budgets file expects but the candidate
    // never produced: a silently skipped cell must fail the gate, flag
    // or no flag — there is no run to vouch for.
    let absent: std::collections::BTreeSet<&String> = base_cells
        .keys()
        .chain(budgets.cells.keys())
        .filter(|k| !seen.contains(*k))
        .collect();
    for key in absent {
        let origin = match (
            base_cells.contains_key(key),
            budgets.cells.contains_key(key),
        ) {
            (true, true) => "baseline and budgets",
            (true, false) => "baseline",
            _ => "budgets",
        };
        cells.push(CellVerdict {
            cell: key.clone(),
            cand_pause: 0,
            base_pause: base_cells.get(key).and_then(|c| u(c, "max_pause_ns")),
            budget: budgets.cells.get(key).and_then(|b| b.max_pause_ns),
            failures: vec![format!(
                "cell present in {origin} but missing from candidate — a skipped cell cannot pass"
            )],
            notes: Vec::new(),
        });
    }
    Ok(Verdict { cells })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budgets;

    fn doc(cells: &[(&str, &str, u64, u64, Option<u64>)]) -> String {
        // (workload, mode, collections, max_pause_ns, mad)
        let lines: Vec<String> = cells
            .iter()
            .map(|(w, m, coll, pause, mad)| {
                let mad = mad.map_or(String::new(), |v| format!(",\"max_pause_ns_mad\":{v}"));
                format!(
                    "  {{\"schema\":\"gc/1\",\"kind\":\"matrix\",\"workload\":\"{w}\",\"mode\":\"{m}\",\
\"collections\":{coll},\"max_pause_ns\":{pause}{mad}}}"
                )
            })
            .collect();
        format!("[\n{}\n]\n", lines.join(",\n"))
    }

    #[test]
    fn budget_ceiling_catches_a_doubled_pause_and_names_the_cell() {
        let baseline = doc(&[("churn-small", "heap-direct", 40, 1_000_000, Some(30_000))]);
        let budgets = budgets::seed(&baseline, 1500).unwrap();
        // Clean candidate: same pause, passes.
        let clean = compare(Some(&baseline), &baseline, &budgets, false).unwrap();
        assert!(clean.passed(), "{}", clean.table());
        // 2× inflation: fails the ceiling AND the noise gate, names the cell.
        let inflated = doc(&[("churn-small", "heap-direct", 40, 2_000_000, None)]);
        let v = compare(Some(&baseline), &inflated, &budgets, false).unwrap();
        assert!(!v.passed());
        assert_eq!(v.failing_cells(), vec!["churn-small/heap-direct"]);
        let table = v.table();
        assert!(table.contains("churn-small/heap-direct"), "{table}");
        assert!(table.contains("FAIL"), "{table}");
        assert!(table.contains("budget ceiling 1500000"), "{table}");
    }

    #[test]
    fn noise_gate_allows_wobble_within_k_mad() {
        let baseline = doc(&[("w", "O", 10, 1_000_000, Some(50_000))]);
        let mut budgets = Budgets::default();
        budgets.gate.k_mad = 5;
        budgets.gate.rel_slack_permille = 0;
        budgets.gate.abs_slack_ns = 0;
        // +4 MAD: inside the allowance.
        let wobble = doc(&[("w", "O", 10, 1_200_000, None)]);
        assert!(compare(Some(&baseline), &wobble, &budgets, false)
            .unwrap()
            .passed());
        // +6 MAD: outside.
        let regress = doc(&[("w", "O", 10, 1_300_001, None)]);
        let v = compare(Some(&baseline), &regress, &budgets, false).unwrap();
        assert!(!v.passed());
        assert!(v.table().contains("allowance 250000"), "{}", v.table());
    }

    #[test]
    fn budgets_only_mode_needs_no_baseline() {
        let cand = doc(&[("w", "O", 10, 900_000, None)]);
        let b = budgets::parse("[\"w/O\"]\nmax_pause_ns = 1000000\n").unwrap();
        assert!(compare(None, &cand, &b, false).unwrap().passed());
        let hot = doc(&[("w", "O", 10, 1_100_000, None)]);
        assert!(!compare(None, &hot, &b, false).unwrap().passed());
    }

    #[test]
    fn mmu_floors_below_budget_fail_the_cell() {
        let cand = "[\n  {\"schema\":\"gc/1\",\"kind\":\"micro\",\"workload\":\"m\",\"mode\":\"heap-direct\",\
\"collections\":5,\"max_pause_ns\":100,\"mmu_10ms_permille\":300}\n]\n";
        let b = budgets::parse("[\"m/heap-direct\"]\nmmu_10ms_floor_permille = 400\n").unwrap();
        let v = compare(None, cand, &b, false).unwrap();
        assert!(!v.passed());
        assert!(v.table().contains("below floor 400"), "{}", v.table());
    }

    #[test]
    fn missing_cells_are_hard_failures_with_no_escape_hatch() {
        // Baseline cell the candidate never produced: fails, flag or not.
        let base = doc(&[("gone", "O", 3, 50, None), ("w", "O", 10, 1_000, None)]);
        let cand = doc(&[("w", "O", 10, 1_000, None)]);
        for allow in [false, true] {
            let v = compare(Some(&base), &cand, &Budgets::default(), allow).unwrap();
            assert!(!v.passed(), "allow={allow}: {}", v.table());
            assert_eq!(v.failing_cells(), vec!["gone/O"]);
            assert!(
                v.table().contains("missing from candidate"),
                "{}",
                v.table()
            );
        }
        // The same protection in budgets-only mode (CI has no baseline).
        let b =
            budgets::parse("[\"gone/O\"]\nmax_pause_ns = 100\n[\"w/O\"]\nmax_pause_ns = 2000\n")
                .unwrap();
        let v = compare(None, &cand, &b, true).unwrap();
        assert!(!v.passed(), "{}", v.table());
        assert!(
            v.table().contains("present in budgets but missing"),
            "{}",
            v.table()
        );
    }

    #[test]
    fn new_cells_fail_unless_explicitly_allowed() {
        let base = doc(&[("w", "O", 10, 1_000, None)]);
        let cand = doc(&[("w", "O", 10, 1_000, None), ("fresh", "g", 4, 900, None)]);
        // Unbudgeted + absent from baseline: named failure on the new cell.
        let v = compare(Some(&base), &cand, &Budgets::default(), false).unwrap();
        assert!(!v.passed(), "{}", v.table());
        assert_eq!(v.failing_cells(), vec!["fresh/g"]);
        assert!(v.table().contains("absent from baseline"), "{}", v.table());
        // The escape hatch downgrades it to a note.
        let v = compare(Some(&base), &cand, &Budgets::default(), true).unwrap();
        assert!(v.passed(), "{}", v.table());
        assert!(v.table().contains("note fresh/g"), "{}", v.table());
        // A collecting cell without a budget is equally ungated.
        let b = budgets::parse("[\"w/O\"]\nmax_pause_ns = 2000\n").unwrap();
        let v = compare(None, &cand, &b, false).unwrap();
        assert!(!v.passed(), "{}", v.table());
        assert!(v.table().contains("has no budget"), "{}", v.table());
        assert!(compare(None, &cand, &b, true).unwrap().passed());
    }

    #[test]
    fn zero_collection_cells_get_a_note() {
        let cand = doc(&[("idle", "O", 0, 0, None)]);
        let v = compare(None, &cand, &Budgets::default(), false).unwrap();
        assert!(v.passed());
        assert!(v.table().contains("zero collections"), "{}", v.table());
        // Unbudgeted but vacuous: `seed-budgets` skips zero-collection
        // cells, so the new-cell check must not fire for them.
        let b = budgets::parse("[\"w/O\"]\nmax_pause_ns = 2000\n").unwrap();
        let both = doc(&[("idle", "O", 0, 0, None), ("w", "O", 10, 1_000, None)]);
        assert!(compare(None, &both, &b, false).unwrap().passed());
    }
}
