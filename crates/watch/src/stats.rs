//! Robust statistics over repeated benchmark runs.
//!
//! Wall-clock numbers on a shared machine are noisy and heavy-tailed;
//! mean/stddev chase outliers. The trajectory therefore stores the
//! **median** of N repeats for every timing field, plus the **median
//! absolute deviation** (MAD) as the noise estimate the regression gate
//! keys its thresholds on. Deterministic counts are not averaged — they
//! are asserted byte-identical across repeats, because a count that moves
//! between runs is a bug, not noise.
//!
//! One field gets a different estimator: `max_pause_ns` is the maximum
//! over every stop in a run, and a single descheduling event landing in
//! any one of hundreds of stops inflates it — the per-run maximum is
//! biased upward in *every* run, so the median across repeats inherits
//! the bias. The workload is deterministic and noise is strictly
//! additive, so the **minimum** across repeats is the consistent
//! estimator of the noise-free worst pause; that is what the aggregate
//! stores (its MAD companion still reports the observed spread).

use gctrace::json::{JsonValue, Writer};
use std::collections::BTreeMap;

/// The median of a sample, rounded toward the lower middle pair average.
/// Returns 0 for an empty slice.
pub fn median(xs: &[u64]) -> u64 {
    if xs.is_empty() {
        return 0;
    }
    let mut v = xs.to_vec();
    v.sort_unstable();
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        // Midpoint of the two middle samples; u64-safe.
        let a = v[n / 2 - 1];
        let b = v[n / 2];
        a / 2 + b / 2 + (a % 2 + b % 2) / 2
    }
}

/// The median absolute deviation from the median — a robust spread
/// estimate: 50% of samples lie within one MAD of the median, outliers
/// barely move it. Returns 0 for fewer than two samples.
pub fn mad(xs: &[u64]) -> u64 {
    if xs.len() < 2 {
        return 0;
    }
    let m = median(xs);
    let devs: Vec<u64> = xs.iter().map(|&x| x.abs_diff(m)).collect();
    median(&devs)
}

/// Parses a `BENCH_gc.json` document (one flat object per line between
/// the array brackets) into its cells, in document order.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_cells(text: &str) -> Result<Vec<BTreeMap<String, JsonValue>>, String> {
    let mut cells = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() || line == "[" || line == "]" {
            continue;
        }
        cells.push(gctrace::json::parse_object(line).map_err(|e| format!("bad cell: {e}"))?);
    }
    Ok(cells)
}

/// The `workload/mode` key a cell is addressed by everywhere in gcwatch
/// (budgets, compare tables, aggregation errors).
pub fn cell_key(cell: &BTreeMap<String, JsonValue>) -> String {
    let w = cell
        .get("workload")
        .and_then(JsonValue::as_str)
        .unwrap_or("?");
    let m = cell.get("mode").and_then(JsonValue::as_str).unwrap_or("?");
    format!("{w}/{m}")
}

/// True for fields that carry wall-clock time (or a quantity derived from
/// it) and therefore move run to run: `*_ns`, throughput, and the MMU
/// utilisation windows, which are computed over the wall-clock pause
/// timeline.
pub fn is_wall_clock_field(key: &str) -> bool {
    key.ends_with("_ns") || key == "allocs_per_sec" || key.starts_with("mmu_")
}

/// Fields that *attribute* a wall-clock extreme (which cause/site owned
/// the worst pause). They legitimately differ between repeats; the
/// aggregate keeps the value from the repeat whose `max_pause_ns` was
/// smallest — the same repeat the aggregated `max_pause_ns` comes from.
fn is_attribution_field(key: &str) -> bool {
    key == "max_pause_cause" || key == "max_pause_site"
}

/// Fields that are a *maximum over many stops within one run*. Additive
/// noise can only push a per-run maximum up, never down, so the minimum
/// across repeats is the consistent estimator of the noise-free value
/// (the median would keep the noise floor of the typical run).
fn is_extreme_field(key: &str) -> bool {
    key == "max_pause_ns"
}

/// Folds N parsed runs of the same benchmark into one document:
///
/// * every wall-clock field becomes its median across repeats plus a
///   `<field>_mad` companion — except `max_pause_ns`, which takes the
///   minimum across repeats (see the module docs for why);
/// * attribution strings come from the repeat whose `max_pause_ns` is
///   smallest;
/// * every other field is asserted identical across repeats (an unequal
///   count is an error, not noise);
/// * each cell gains a `repeats` field.
///
/// With a single run the document passes through unchanged except for
/// `repeats:1` (no `_mad` fields — there is no spread to estimate).
///
/// # Errors
///
/// Returns a message if the runs disagree on cell identity/order or on
/// any deterministic field.
pub fn aggregate(runs: &[Vec<BTreeMap<String, JsonValue>>]) -> Result<String, String> {
    let Some(first) = runs.first() else {
        return Err("no runs to aggregate".into());
    };
    for (i, run) in runs.iter().enumerate() {
        if run.len() != first.len() {
            return Err(format!(
                "run {i} has {} cells, run 0 has {}",
                run.len(),
                first.len()
            ));
        }
    }
    let mut lines = Vec::new();
    for ci in 0..first.len() {
        let key = cell_key(&first[ci]);
        for (ri, run) in runs.iter().enumerate() {
            if cell_key(&run[ci]) != key {
                return Err(format!(
                    "cell order differs: run {ri} has {} where run 0 has {key}",
                    cell_key(&run[ci])
                ));
            }
            if run[ci].contains_key("repeats") {
                return Err(format!("{key}: run {ri} is already aggregated"));
            }
        }
        // The repeat with the smallest (least noise-inflated) worst pause
        // owns the attribution strings, matching the aggregated
        // max_pause_ns itself.
        let pauses: Vec<u64> = runs
            .iter()
            .map(|r| {
                r[ci]
                    .get("max_pause_ns")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0)
            })
            .collect();
        let rep_for_attrib = pauses
            .iter()
            .enumerate()
            .min_by_key(|(_, &p)| p)
            .map_or(0, |(i, _)| i);

        let mut w = Writer::new();
        for (field, v0) in &first[ci] {
            if is_wall_clock_field(field) {
                let samples: Vec<u64> = runs
                    .iter()
                    .map(|r| r[ci].get(field).and_then(JsonValue::as_u64).unwrap_or(0))
                    .collect();
                let agg = if is_extreme_field(field) {
                    samples.iter().copied().min().unwrap_or(0)
                } else {
                    median(&samples)
                };
                w.uint_field(field, agg);
                if runs.len() > 1 {
                    w.uint_field(&format!("{field}_mad"), mad(&samples));
                }
            } else if is_attribution_field(field) {
                let v = runs[rep_for_attrib][ci]
                    .get(field)
                    .and_then(JsonValue::as_str)
                    .unwrap_or("?");
                w.str_field(field, v);
            } else {
                for (ri, run) in runs.iter().enumerate() {
                    if run[ci].get(field) != Some(v0) {
                        return Err(format!(
                            "{key}: deterministic field {field:?} differs between run 0 and run {ri}"
                        ));
                    }
                }
                match v0 {
                    JsonValue::Str(s) => w.str_field(field, s),
                    JsonValue::Num(n) if n.trunc() == *n && *n >= 0.0 => {
                        w.uint_field(field, *n as u64);
                    }
                    JsonValue::Num(n) => w.float_field(field, *n),
                    JsonValue::Bool(b) => w.bool_field(field, *b),
                    other => {
                        return Err(format!("{key}: unsupported value in {field:?}: {other:?}"))
                    }
                }
            }
        }
        w.uint_field("repeats", runs.len() as u64);
        lines.push(format!("  {}", w.finish()));
    }
    Ok(format!("[\n{}\n]\n", lines.join(",\n")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mad_are_robust_to_one_outlier() {
        assert_eq!(median(&[]), 0);
        assert_eq!(median(&[7]), 7);
        assert_eq!(median(&[1, 9]), 5);
        assert_eq!(median(&[3, 1, 2]), 2);
        // One wild outlier barely moves median or MAD.
        let calm = [100, 104, 96, 101, 99];
        let wild = [100, 104, 96, 101, 9900];
        assert_eq!(median(&calm), 100);
        assert_eq!(median(&wild), 101);
        assert!(mad(&wild) <= 4, "MAD ignores the outlier: {}", mad(&wild));
    }

    fn doc(pause: u64, collections: u64) -> String {
        format!(
            "[\n  {{\"schema\":\"gc/1\",\"kind\":\"matrix\",\"workload\":\"w\",\"mode\":\"O\",\
\"collections\":{collections},\"max_pause_ns\":{pause},\"max_pause_cause\":\"threshold\"}}\n]\n"
        )
    }

    #[test]
    fn aggregate_mins_extremes_medians_wall_clock_and_pins_counts() {
        let runs: Vec<_> = [900u64, 1000, 4000]
            .iter()
            .map(|&p| parse_cells(&doc(p, 12)).unwrap())
            .collect();
        let out = aggregate(&runs).unwrap();
        let cells = parse_cells(&out).unwrap();
        assert_eq!(cells.len(), 1);
        let c = &cells[0];
        // max_pause_ns is a per-run maximum: noise only inflates it, so
        // the aggregate takes the least-inflated repeat, not the median.
        assert_eq!(c.get("max_pause_ns").unwrap().as_u64(), Some(900));
        assert_eq!(c.get("max_pause_ns_mad").unwrap().as_u64(), Some(100));
        assert_eq!(c.get("collections").unwrap().as_u64(), Some(12));
        assert_eq!(c.get("repeats").unwrap().as_u64(), Some(3));
        assert_eq!(
            c.get("max_pause_cause").unwrap().as_str(),
            Some("threshold")
        );
    }

    fn doc_with_total(pause: u64, total: u64) -> String {
        format!(
            "[\n  {{\"schema\":\"gc/1\",\"kind\":\"matrix\",\"workload\":\"w\",\"mode\":\"O\",\
\"collections\":3,\"max_pause_ns\":{pause},\"total_pause_ns\":{total}}}\n]\n"
        )
    }

    #[test]
    fn only_extreme_fields_take_the_min() {
        let runs: Vec<_> = [(900u64, 5000u64), (1000, 6000), (4000, 9000)]
            .iter()
            .map(|&(p, t)| parse_cells(&doc_with_total(p, t)).unwrap())
            .collect();
        let out = aggregate(&runs).unwrap();
        let c = &parse_cells(&out).unwrap()[0];
        assert_eq!(c.get("max_pause_ns").unwrap().as_u64(), Some(900));
        // Plain wall-clock sums still take the median.
        assert_eq!(c.get("total_pause_ns").unwrap().as_u64(), Some(6000));
    }

    #[test]
    fn aggregate_rejects_deterministic_drift() {
        let runs = vec![
            parse_cells(&doc(1000, 12)).unwrap(),
            parse_cells(&doc(1000, 13)).unwrap(),
        ];
        let err = aggregate(&runs).unwrap_err();
        assert!(err.contains("collections"), "{err}");
        assert!(err.contains("w/O"), "names the cell: {err}");
    }

    #[test]
    fn single_run_aggregate_adds_no_mad_fields() {
        let runs = vec![parse_cells(&doc(1000, 12)).unwrap()];
        let out = aggregate(&runs).unwrap();
        assert!(!out.contains("_mad"), "{out}");
        assert!(out.contains("\"repeats\":1"), "{out}");
    }
}
