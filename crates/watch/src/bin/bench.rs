//! The regression-gate CLI.
//!
//! ```text
//! bench compare <baseline.json|-> <candidate.json> --budgets budgets.toml [--allow-new-cells]
//! bench seed-budgets <bench.json> [--margin-permille 1500] [--out budgets.toml]
//! bench validate-timeline <timeline.json>
//! bench snap diff <a.json> <b.json> [--budget-bytes N]
//! ```
//!
//! `compare` prints the diff table and exits 1 when the gate fails;
//! pass `-` as the baseline for budgets-only mode (cross-machine CI).
//! Cells missing from the candidate, or new cells the baseline/budgets
//! never gated, are hard failures; `--allow-new-cells` accepts the new
//! ones for the run where the matrix intentionally grew (reseed the
//! budgets afterwards). `seed-budgets` writes ceilings/floors with
//! margin from a measured document. `snap diff` validates two `snap/1`
//! heap snapshots, prints per-site retained-size growth, and exits 1
//! when reachable growth exceeds `--budget-bytes` (default 0, i.e. any
//! reachable growth fails the gate). Usage errors exit 2.

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  bench compare <baseline.json|-> <candidate.json> --budgets <budgets.toml> [--allow-new-cells]\n  \
bench seed-budgets <bench.json> [--margin-permille N] [--out <file>]\n  \
bench validate-timeline <timeline.json>\n  \
bench snap diff <a.json> <b.json> [--budget-bytes N]"
    );
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compare") => {
            let mut budgets_path = None;
            let mut allow_new_cells = false;
            let mut pos = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                if a == "--budgets" {
                    budgets_path = Some(it.next().ok_or("--budgets wants a path")?.clone());
                } else if a == "--allow-new-cells" {
                    allow_new_cells = true;
                } else {
                    pos.push(a.clone());
                }
            }
            let [base, cand] = pos.as_slice() else {
                return Ok(usage());
            };
            let budgets = match budgets_path {
                Some(p) => gcwatch::budgets::parse(&read(&p)?)?,
                None => gcwatch::Budgets::default(),
            };
            let base_text = if base == "-" { None } else { Some(read(base)?) };
            let cand_text = read(cand)?;
            let verdict =
                gcwatch::compare(base_text.as_deref(), &cand_text, &budgets, allow_new_cells)?;
            print!("{}", verdict.table());
            Ok(if verdict.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        Some("seed-budgets") => {
            let mut margin = 1500u64;
            let mut out = None;
            let mut pos = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--margin-permille" => {
                        margin = it
                            .next()
                            .ok_or("--margin-permille wants a number")?
                            .parse()
                            .map_err(|e| format!("--margin-permille: {e}"))?;
                    }
                    "--out" => out = Some(it.next().ok_or("--out wants a path")?.clone()),
                    _ => pos.push(a.clone()),
                }
            }
            let [bench] = pos.as_slice() else {
                return Ok(usage());
            };
            let budgets = gcwatch::budgets::seed(&read(bench)?, margin)?;
            let text = gcwatch::budgets::render(&budgets);
            match out {
                Some(p) => {
                    std::fs::write(&p, &text).map_err(|e| format!("{p}: {e}"))?;
                    eprintln!("wrote {} cell budgets to {p}", budgets.cells.len());
                }
                None => print!("{text}"),
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("snap") => {
            if args.get(1).map(String::as_str) != Some("diff") {
                return Ok(usage());
            }
            let mut budget_bytes = 0u64;
            let mut pos = Vec::new();
            let mut it = args[2..].iter();
            while let Some(a) = it.next() {
                if a == "--budget-bytes" {
                    budget_bytes = it
                        .next()
                        .ok_or("--budget-bytes wants a number")?
                        .parse()
                        .map_err(|e| format!("--budget-bytes: {e}"))?;
                } else {
                    pos.push(a.clone());
                }
            }
            let [a_path, b_path] = pos.as_slice() else {
                return Ok(usage());
            };
            let a = gcsnap::validate(&read(a_path)?).map_err(|e| format!("{a_path}: {e}"))?;
            let b = gcsnap::validate(&read(b_path)?).map_err(|e| format!("{b_path}: {e}"))?;
            let d = gcsnap::diff::diff(&a, &b);
            print!("{}", gcsnap::diff::render_table(&d, &a.label, &b.label));
            Ok(if d.over_budget(budget_bytes) {
                if let Some(top) = d.top_growth() {
                    eprintln!(
                        "bench: reachable growth {} bytes exceeds budget {budget_bytes}; \
largest retained growth at site {} ({:+} bytes)",
                        d.reachable_growth,
                        top.site,
                        top.retained_delta()
                    );
                } else {
                    eprintln!(
                        "bench: reachable growth {} bytes exceeds budget {budget_bytes}",
                        d.reachable_growth
                    );
                }
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        Some("validate-timeline") => {
            let [path] = &args[1..] else {
                return Ok(usage());
            };
            let n = gcwatch::validate_chrome_trace(&read(path)?)?;
            eprintln!("{path}: {n} events, well-formed");
            Ok(ExitCode::SUCCESS)
        }
        _ => Ok(usage()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("bench: {e}");
            ExitCode::from(2)
        }
    }
}
