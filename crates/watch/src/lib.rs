//! gcwatch: perf observability for the GC trajectory.
//!
//! Three pillars, all dependency-free and deterministic where the rest of
//! the repo demands determinism:
//!
//! * [`stats`] — robust statistics (`median` + MAD) and the `--repeat N`
//!   aggregator that folds N `BENCH_gc.json` runs into one document with
//!   median wall-clock fields (minimum for the per-run-maximum
//!   `max_pause_ns`, which noise can only inflate), `<field>_mad` noise
//!   estimates, and a hard assertion that every deterministic count is
//!   byte-identical across repeats.
//! * [`chrome`] — a Chrome Trace Event Format (Perfetto-loadable)
//!   timeline writer fed by the per-collection attribution log. The
//!   timeline runs on a *virtual clock* derived only from deterministic
//!   counters (bytes allocated, roots scanned, words marked, pages
//!   swept), so the exported JSON is byte-identical run to run and at any
//!   `--jobs` level.
//! * [`budgets`] / [`compare`] — a noise-aware perf-regression gate:
//!   per-cell `max_pause_ns` ceilings and MMU floors in a tiny TOML
//!   subset, compared against a candidate `BENCH_gc.json` with a
//!   median + k·MAD noise gate, producing a human-readable diff table
//!   and a nonzero exit for CI.

#![warn(missing_docs)]

pub mod budgets;
pub mod chrome;
pub mod compare;
pub mod stats;

pub use budgets::{Budgets, CellBudget, Gate};
pub use chrome::{chrome_trace, validate_chrome_trace, TimelineCell};
pub use compare::{compare, Verdict};
pub use stats::{aggregate, mad, median};
