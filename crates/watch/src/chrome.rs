//! Chrome Trace Event Format export of the collection timeline.
//!
//! The output loads directly into Perfetto (`ui.perfetto.dev`) or
//! `chrome://tracing`: one process per workload, one thread per mode,
//! one `X` (complete) slice per collection with root-scan / heap-scan /
//! sweep sub-slices, and counter tracks for live bytes and sweep debt.
//!
//! **The clock is virtual.** Wall-clock nanoseconds differ run to run
//! and across `--jobs` levels, which would break the repo's determinism
//! discipline, so the timeline advances on deterministic work counters
//! instead: mutator time is bytes allocated since the previous
//! collection, root-scan time is roots scanned, heap-scan time is words
//! marked, sweep time is pages swept (scaled so a page reads as ~32
//! ticks). The relative shape of a trace — which collections dominate,
//! how sweep debt drains — is faithful; the absolute numbers are ticks,
//! not nanoseconds. Event `args` carry only deterministic fields for the
//! same reason.

use gcprof::CollectionRecord;
use gctrace::json::{JsonValue, Writer};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// One (workload, mode) cell's collection log, ready for export.
#[derive(Debug, Clone)]
pub struct TimelineCell {
    /// Workload name — becomes the Perfetto process.
    pub workload: String,
    /// Mode key — becomes the Perfetto thread within the process.
    pub mode: String,
    /// Per-collection attribution records in collection order.
    pub records: Vec<CollectionRecord>,
}

/// Virtual ticks a swept page costs (roughly the bitmap words touched).
const TICKS_PER_SWEPT_PAGE: u64 = 32;

fn phase_durs(r: &CollectionRecord) -> (u64, u64, u64) {
    // Every phase lasts at least one tick so zero-work collections still
    // render as visible slices. For an incremental cycle the words the
    // bounded increments already scanned are rendered as their own
    // `mark-inc` slices, so the final stop's heap-scan slice only shows
    // the finish drain.
    let inc_words: u64 = r.increment_words.iter().sum();
    let root = r.roots_scanned + 1;
    let heap = r.words_marked.saturating_sub(inc_words) + 1;
    let sweep = r.pages_swept * TICKS_PER_SWEPT_PAGE + 1;
    (root, heap, sweep)
}

fn event(
    name: &str,
    ph: &str,
    pid: u64,
    tid: u64,
    ts: u64,
    dur: Option<u64>,
    args: Option<String>,
) -> String {
    let mut w = Writer::new();
    w.str_field("name", name);
    w.str_field("ph", ph);
    if ph != "M" {
        w.str_field("cat", "gc");
    }
    w.uint_field("pid", pid);
    w.uint_field("tid", tid);
    w.uint_field("ts", ts);
    if let Some(d) = dur {
        w.uint_field("dur", d);
    }
    if let Some(a) = args {
        w.raw_field("args", &a);
    }
    w.finish()
}

/// Renders the cells as a Chrome Trace Event Format document. Fully
/// deterministic: same cells in, byte-identical JSON out, regardless of
/// `--jobs` or wall-clock noise.
pub fn chrome_trace(cells: &[TimelineCell]) -> String {
    // Stable pid/tid assignment: first-seen order of workloads and modes.
    let mut workloads: Vec<&str> = Vec::new();
    let mut modes: Vec<&str> = Vec::new();
    for c in cells {
        if !workloads.contains(&c.workload.as_str()) {
            workloads.push(&c.workload);
        }
        if !modes.contains(&c.mode.as_str()) {
            modes.push(&c.mode);
        }
    }
    let pid_of = |w: &str| workloads.iter().position(|&x| x == w).unwrap_or(0) as u64;
    let tid_of = |m: &str| modes.iter().position(|&x| x == m).unwrap_or(0) as u64;

    let mut events: Vec<String> = Vec::new();
    for (pid, w) in workloads.iter().enumerate() {
        let mut a = Writer::new();
        a.str_field("name", w);
        events.push(event(
            "process_name",
            "M",
            pid as u64,
            0,
            0,
            None,
            Some(a.finish()),
        ));
    }
    for c in cells {
        let mut a = Writer::new();
        a.str_field("name", &c.mode);
        events.push(event(
            "thread_name",
            "M",
            pid_of(&c.workload),
            tid_of(&c.mode),
            0,
            None,
            Some(a.finish()),
        ));
    }
    for c in cells {
        let (pid, tid) = (pid_of(&c.workload), tid_of(&c.mode));
        let mut vt: u64 = 0;
        for (n, r) in c.records.iter().enumerate() {
            // Mutator span: the bytes allocated since the last collection
            // advance the virtual clock before the pause begins. An
            // incremental cycle interleaves its bounded mark stops with
            // the mutator: the span is split into equal gaps with one
            // `mark-inc` slice (duration = words that stop scanned)
            // between each, and the finish stop renders as the usual
            // collection slice at the end.
            let stops = r.increment_words.len() as u64;
            if stops > 0 {
                let gap = r.bytes_since_gc / (stops + 1);
                let mut spent = 0;
                for (i, &w) in r.increment_words.iter().enumerate() {
                    vt += gap;
                    spent += gap;
                    let mut a = Writer::new();
                    a.uint_field("increment", i as u64 + 1);
                    a.uint_field("words_scanned", w);
                    events.push(event(
                        "mark-inc",
                        "X",
                        pid,
                        tid,
                        vt,
                        Some(w + 1),
                        Some(a.finish()),
                    ));
                    vt += w + 1;
                }
                vt += r.bytes_since_gc - spent;
            } else {
                vt += r.bytes_since_gc;
            }
            let (root, heap, sweep) = phase_durs(r);
            let total = root + heap + sweep;
            let mut args = Writer::new();
            args.str_field("cause", r.cause.as_str());
            args.str_field("site", r.site.as_deref().unwrap_or("-"));
            args.uint_field("bytes_since_gc", r.bytes_since_gc);
            args.uint_field("roots_scanned", r.roots_scanned);
            args.uint_field("words_marked", r.words_marked);
            args.uint_field("pages_swept", r.pages_swept);
            args.uint_field("pages_live", r.pages_live);
            args.uint_field("freed_bytes", r.freed_bytes);
            args.uint_field("bytes_live", r.bytes_live);
            args.uint_field("sweep_debt_pages", r.sweep_debt_pages);
            args.uint_field("increments", r.increments);
            args.uint_field("young_pages_swept", r.young_pages_swept);
            let name = format!("GC #{n} ({})", r.cause.as_str());
            events.push(event(
                &name,
                "X",
                pid,
                tid,
                vt,
                Some(total),
                Some(args.finish()),
            ));
            events.push(event("root-scan", "X", pid, tid, vt, Some(root), None));
            events.push(event(
                "heap-scan",
                "X",
                pid,
                tid,
                vt + root,
                Some(heap),
                None,
            ));
            events.push(event(
                "sweep",
                "X",
                pid,
                tid,
                vt + root + heap,
                Some(sweep),
                None,
            ));
            vt += total;
            // Counter tracks are keyed (pid, name) in the trace model, so
            // the mode goes into the counter name to keep cells separate.
            for (counter, value) in [
                ("bytes_live", r.bytes_live),
                ("sweep_debt_pages", r.sweep_debt_pages),
            ] {
                let mut a = Writer::new();
                a.uint_field(counter, value);
                events.push(event(
                    &format!("{counter} ({})", c.mode),
                    "C",
                    pid,
                    tid,
                    vt,
                    None,
                    Some(a.finish()),
                ));
            }
        }
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        let sep = if i + 1 == events.len() { "" } else { "," };
        let _ = writeln!(out, "  {e}{sep}");
    }
    out.push_str(
        "],\"displayTimeUnit\":\"ns\",\
\"otherData\":{\"clock\":\"virtual\",\"unit\":\"deterministic work ticks\"}}\n",
    );
    out
}

/// Validates a [`chrome_trace`] document: well-formed JSON, a
/// `traceEvents` array whose `X` events carry non-negative `ts`/`dur`
/// with per-(pid, tid) non-decreasing timestamps, and process/thread
/// name metadata for every (pid, tid) that emits slices. Returns the
/// event count.
///
/// # Errors
///
/// Returns a message describing the first violation.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = gctrace::json::parse(text)?;
    let Some(JsonValue::Arr(events)) = doc.get("traceEvents") else {
        return Err("missing traceEvents array".into());
    };
    let mut named_pids: BTreeSet<u64> = BTreeSet::new();
    let mut named_tids: BTreeSet<(u64, u64)> = BTreeSet::new();
    let mut last_ts: std::collections::BTreeMap<(u64, u64), u64> = Default::default();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let pid = e
            .get("pid")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("event {i}: missing or negative pid"))?;
        let tid = e
            .get("tid")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("event {i}: missing or negative tid"))?;
        match ph {
            "M" => match e.get("name").and_then(JsonValue::as_str) {
                Some("process_name") => {
                    named_pids.insert(pid);
                }
                Some("thread_name") => {
                    named_tids.insert((pid, tid));
                }
                other => return Err(format!("event {i}: unknown metadata {other:?}")),
            },
            "X" | "C" => {
                let ts = e
                    .get("ts")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("event {i}: missing or negative ts"))?;
                if ph == "X" {
                    e.get("dur")
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| format!("event {i}: missing or negative dur"))?;
                }
                let prev = last_ts.entry((pid, tid)).or_insert(0);
                if ts < *prev {
                    return Err(format!(
                        "event {i}: ts {ts} goes backwards on pid {pid} tid {tid} (last {prev})"
                    ));
                }
                *prev = ts;
                if !named_pids.contains(&pid) {
                    return Err(format!("event {i}: pid {pid} has no process_name"));
                }
                if ph == "X" && !named_tids.contains(&(pid, tid)) {
                    return Err(format!("event {i}: pid {pid} tid {tid} has no thread_name"));
                }
            }
            other => return Err(format!("event {i}: unsupported phase {other:?}")),
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcprof::{CollectCause, CollectionRecord};

    fn rec(n: u64) -> CollectionRecord {
        CollectionRecord {
            cause: if n % 2 == 0 {
                CollectCause::Threshold
            } else {
                CollectCause::Explicit
            },
            site: Some("main;loop;malloc@3:1".into()),
            bytes_since_gc: 1000 * (n + 1),
            bytes_live: 400 * (n + 1),
            freed_bytes: 600,
            roots_scanned: 10 + n,
            words_marked: 50 + n,
            pages_live: 3,
            pages_swept: 4,
            sweep_debt_pages: n,
            // Wall-clock fields: deliberately different per "run" below to
            // prove they never reach the trace.
            pause_ns: 12345 + n * 7,
            mark_ns: 8000,
            sweep_ns: 4345,
            root_scan_ns: 3000,
            heap_scan_ns: 5000,
            class_sweep_ns: vec![(16, 100), (0, 50)],
            ..CollectionRecord::default()
        }
    }

    fn cells() -> Vec<TimelineCell> {
        vec![
            TimelineCell {
                workload: "cfrac".into(),
                mode: "O".into(),
                records: (0..3).map(rec).collect(),
            },
            TimelineCell {
                workload: "cfrac".into(),
                mode: "g".into(),
                records: (0..2).map(rec).collect(),
            },
            TimelineCell {
                workload: "gs".into(),
                mode: "O".into(),
                records: vec![rec(0)],
            },
        ]
    }

    #[test]
    fn trace_is_well_formed_and_carries_attribution() {
        let text = chrome_trace(&cells());
        let n = validate_chrome_trace(&text).expect("valid trace");
        // 2 process names + 3 thread names + per record: 4 slices + 2 counters.
        assert_eq!(n, 2 + 3 + 6 * (3 + 2 + 1));
        assert!(text.contains("\"cause\":\"threshold\""));
        assert!(text.contains("\"cause\":\"explicit\""));
        assert!(text.contains("main;loop;malloc@3:1"));
        assert!(text.contains("root-scan"));
        assert!(text.contains("heap-scan"));
        assert!(text.contains("bytes_live (O)"));
    }

    #[test]
    fn incremental_cycles_render_bounded_mark_slices() {
        let mut r = rec(0);
        r.increments = 2;
        r.increment_words = vec![0, 30]; // initial root scan + one increment
        r.increment_pauses = vec![
            gcprof::Pause {
                end_ns: 1,
                pause_ns: 77,
            },
            gcprof::Pause {
                end_ns: 2,
                pause_ns: 88,
            },
        ];
        r.words_marked = 50; // 30 in the increment, 20 in the finish drain
        let cells = vec![TimelineCell {
            workload: "micro".into(),
            mode: "heap-direct".into(),
            records: vec![r, rec(1)],
        }];
        let text = chrome_trace(&cells);
        validate_chrome_trace(&text).expect("valid trace");
        assert_eq!(text.matches("\"mark-inc\"").count(), 2, "{text}");
        assert!(text.contains("\"words_scanned\":30"), "{text}");
        assert!(text.contains("\"increments\":2"), "{text}");
        // The finish stop's heap-scan slice shows only the finish drain:
        // 50 total words - 30 already rendered as increments + 1 tick.
        assert!(text.contains("\"name\":\"heap-scan\""));
        assert!(text.contains("\"dur\":21"), "{text}");
        // Increment wall-clock never reaches the virtual-clock trace.
        for needle in ["77", "88", "increment_pauses"] {
            assert!(!text.contains(needle), "wall-clock leaked: {needle}");
        }
    }

    #[test]
    fn trace_never_leaks_wall_clock() {
        let text = chrome_trace(&cells());
        for needle in ["pause_ns", "mark_ns", "sweep_ns", "12345", "_scan_ns"] {
            assert!(!text.contains(needle), "wall-clock leaked: {needle}");
        }
        // Perturb only wall-clock fields; the trace must not move.
        let mut wobbled = cells();
        for c in &mut wobbled {
            for r in &mut c.records {
                r.pause_ns += 999_999;
                r.mark_ns += 5;
                r.root_scan_ns = 1;
            }
        }
        assert_eq!(text, chrome_trace(&wobbled));
    }

    #[test]
    fn validator_rejects_backwards_time_and_orphan_threads() {
        let good = chrome_trace(&cells());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_ok());
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        // Orphan slice: an X event on a tid without thread_name metadata.
        let orphan = "{\"traceEvents\":[\
{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"ts\":0,\"args\":{\"name\":\"w\"}},\
{\"name\":\"gc\",\"ph\":\"X\",\"cat\":\"gc\",\"pid\":0,\"tid\":7,\"ts\":5,\"dur\":1}]}";
        let err = validate_chrome_trace(orphan).unwrap_err();
        assert!(err.contains("thread_name"), "{err}");
        // Backwards time within one (pid, tid) lane.
        let back = "{\"traceEvents\":[\
{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"w\"}},\
{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"m\"}},\
{\"name\":\"a\",\"ph\":\"X\",\"cat\":\"gc\",\"pid\":0,\"tid\":0,\"ts\":10,\"dur\":1},\
{\"name\":\"b\",\"ph\":\"X\",\"cat\":\"gc\",\"pid\":0,\"tid\":0,\"ts\":5,\"dur\":1}]}";
        let err = validate_chrome_trace(back).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
        assert!(validate_chrome_trace(&good).is_ok());
    }
}
