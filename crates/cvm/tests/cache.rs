//! The pipeline caches' soundness contract, pinned from outside the
//! crate: structurally-equal sources share memoized artifacts, but
//! everything positional — alloc-site labels, spans, trace streams — is
//! bound to the *requesting* source text, never to whichever formatting
//! happened to populate the cache first.
//!
//! The caches and their counters are process-global, and the test
//! harness is threaded, so every test takes `SERIAL` and asserts on
//! counter *deltas* around its own compiles.

use cvm::{compile, compile_traced, pipeline_cache_stats, CompileOptions};
use gccache::StageStats;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn stage(stats: &[StageStats], name: &str) -> StageStats {
    *stats
        .iter()
        .find(|s| s.stage == name)
        .unwrap_or_else(|| panic!("no {name:?} stage in {stats:?}"))
}

/// (hits, misses) accrued on `name` between the two snapshots.
fn delta(before: &[StageStats], after: &[StageStats], name: &str) -> (u64, u64) {
    let b = stage(before, name);
    let a = stage(after, name);
    (a.hits - b.hits, a.misses - b.misses)
}

/// 1-based (line, col) of the first occurrence of `needle` — what an
/// alloc-site label bound against `src` must report.
fn pos_of(src: &str, needle: &str) -> (usize, usize) {
    let off = src.find(needle).expect("needle present");
    let line = src[..off].matches('\n').count() + 1;
    let col = off - src[..off].rfind('\n').map_or(0, |i| i + 1) + 1;
    (line, col)
}

#[test]
fn hash_equal_sources_share_cached_ir_but_rebind_site_labels() {
    let _guard = SERIAL.lock().unwrap();
    let src_a =
        "int main(void) {\n    char *p = (char *) malloc(24);\n    p[0] = 1;\n    return 0;\n}\n";
    // Same program, different formatting: a leading comment and deeper
    // indentation move the malloc to a different line and column.
    let src_b = "/* rebind pin: formatting only */\nint main(void)\n{\n        char *p = (char *) malloc(24);\n        p[0] = 1;\n        return 0;\n}\n";
    let pa = cfront::parse(src_a).unwrap();
    let pb = cfront::parse(src_b).unwrap();
    assert_eq!(
        cfront::program_hash(&pa),
        cfront::program_hash(&pb),
        "the two formattings must be structurally equal for this pin"
    );
    assert_ne!(
        pos_of(src_a, "malloc"),
        pos_of(src_b, "malloc"),
        "the formatting must actually move the call site"
    );

    let opts = CompileOptions::optimized();
    let prog_a = compile(src_a, &opts).unwrap();
    let before = pipeline_cache_stats();
    let prog_b = compile(src_b, &opts).unwrap();
    let after = pipeline_cache_stats();
    assert_eq!(
        delta(&before, &after, "compile"),
        (1, 0),
        "the second formatting must be served from the compile cache"
    );

    // Shared artifact, per-requester coordinates: the IRs agree on the
    // stable AST node, and each label lands where *that* source put the
    // call.
    assert_eq!(prog_a.alloc_sites.len(), 1);
    assert_eq!(prog_b.alloc_sites.len(), 1);
    assert_eq!(prog_a.alloc_sites[0].node, prog_b.alloc_sites[0].node);
    let (la, ca) = pos_of(src_a, "malloc");
    let (lb, cb) = pos_of(src_b, "malloc");
    assert_eq!(prog_a.alloc_sites[0].label(), format!("malloc@{la}:{ca}"));
    assert_eq!(prog_b.alloc_sites[0].label(), format!("malloc@{lb}:{cb}"));
    assert_eq!(
        prog_a.alloc_sites[0].span_start,
        src_a.find("malloc").unwrap()
    );
    assert_eq!(
        prog_b.alloc_sites[0].span_start,
        src_b.find("malloc").unwrap()
    );
}

#[test]
fn warm_recompile_is_pure_compile_hits_and_skips_earlier_stages() {
    let _guard = SERIAL.lock().unwrap();
    // Unique to this test so the first pass is genuinely cold.
    let src =
        "int warm_pin(int n) { return n + 41; }\nint main(void) { return warm_pin(1) - 42; }\n";
    let option_sets = [
        CompileOptions::optimized(),
        CompileOptions::optimized_safe(), // also OSafePost's options
        CompileOptions::debug(),
        CompileOptions::debug_checked(),
    ];
    let cold: Vec<_> = option_sets
        .iter()
        .map(|o| compile(src, o).unwrap())
        .collect();
    let before = pipeline_cache_stats();
    let warm: Vec<_> = option_sets
        .iter()
        .map(|o| compile(src, o).unwrap())
        .collect();
    let after = pipeline_cache_stats();
    assert_eq!(
        delta(&before, &after, "compile"),
        (option_sets.len() as u64, 0),
        "every warm recompile must be a compile-cache hit"
    );
    // A compile hit returns before annotate/lower are even consulted —
    // the stage-skipping the incremental pipeline exists for.
    assert_eq!(delta(&before, &after, "annotate"), (0, 0));
    assert_eq!(delta(&before, &after, "lower"), (0, 0));
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.funcs.len(), w.funcs.len());
        assert_eq!(c.alloc_sites, w.alloc_sites);
    }
}

#[test]
fn traced_warm_compile_replays_the_cold_event_stream() {
    let _guard = SERIAL.lock().unwrap();
    let src =
        "int main(void) {\n    char *p = (char *) malloc(48);\n    p[1] = 7;\n    return 0;\n}\n";
    let opts = CompileOptions::optimized_safe();
    let (cold_trace, cold_sink) = gctrace::TraceHandle::memory();
    compile_traced(src, &opts, &cold_trace).unwrap();
    let before = pipeline_cache_stats();
    let (warm_trace, warm_sink) = gctrace::TraceHandle::memory();
    compile_traced(src, &opts, &warm_trace).unwrap();
    let after = pipeline_cache_stats();
    assert_eq!(delta(&before, &after, "compile"), (1, 0));
    let cold = cold_sink.snapshot();
    let warm = warm_sink.snapshot();
    assert!(!cold.is_empty(), "an annotated traced compile emits events");
    assert!(
        cold.iter().any(|e| e.stage == "annotate"),
        "audit events present: {cold:?}"
    );
    assert_eq!(
        cold, warm,
        "the warm compile must replay the stream verbatim"
    );
}

#[test]
fn traced_requests_reject_entries_from_other_formattings() {
    let _guard = SERIAL.lock().unwrap();
    let src_a =
        "int main(void) {\n    char *q = (char *) calloc(3, 9);\n    q[2] = 5;\n    return 0;\n}\n";
    let src_b = "/* moved */\nint main(void) {\n        char *q = (char *) calloc(3, 9);\n        q[2] = 5;\n        return 0;\n}\n";
    let opts = CompileOptions::optimized_safe();
    let (trace_a, _sink_a) = gctrace::TraceHandle::memory();
    compile_traced(src_a, &opts, &trace_a).unwrap();
    // A traced request for a different formatting must not replay A's
    // stream (audit events are positional): the fingerprint gate turns
    // the lookup into a miss and the stages run live.
    let before = pipeline_cache_stats();
    let (trace_b, sink_b) = gctrace::TraceHandle::memory();
    compile_traced(src_b, &opts, &trace_b).unwrap();
    let after = pipeline_cache_stats();
    assert_eq!(
        delta(&before, &after, "compile"),
        (0, 1),
        "an exact-text-gated entry must not serve another formatting"
    );
    assert!(!sink_b.snapshot().is_empty(), "B's own stream was emitted");
}
