//! Three-address intermediate representation.
//!
//! The IR plays the role of gcc's RTL in the paper's pipeline: the
//! annotator's `KEEP_LIVE` / `GC_same_obj` expressions survive lowering as
//! first-class instructions ([`Instr::KeepLive`], [`Instr::CheckSame`]), so
//! the optimizer can honour their constraints exactly as the paper's
//! inline-`asm` encoding forced gcc to:
//!
//! * the *value* operand must materialise in a register (no folding the
//!   computation into an addressing mode through the barrier);
//! * the *base* operand is a use, so liveness keeps the base pointer
//!   visible until the protected value exists.

use cfront::sema::Builtin;
use std::fmt;

/// Tag added to function-table indices to form function-pointer values.
/// Chosen outside every mapped memory region so a function pointer can
/// never be mistaken for a data address (or a heap pointer by the
/// conservative collector).
pub const FUNC_PTR_BASE: i64 = 0x4000_0000;

/// A virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Temp(pub u32);

impl fmt::Display for Temp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A basic-block id within one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Virtual register.
    Temp(Temp),
    /// Immediate constant (also used for addresses of globals/strings).
    Const(i64),
}

impl Operand {
    /// The temp, if this operand is one.
    pub fn as_temp(&self) -> Option<Temp> {
        match self {
            Operand::Temp(t) => Some(*t),
            Operand::Const(_) => None,
        }
    }

    /// The constant, if this operand is one.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            Operand::Const(c) => Some(*c),
            Operand::Temp(_) => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Temp(t) => write!(f, "{t}"),
            Operand::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<Temp> for Operand {
    fn from(t: Temp) -> Self {
        Operand::Temp(t)
    }
}

/// Binary IR operations. Comparisons produce 0/1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinIr {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    DivU,
    RemU,
    And,
    Or,
    Xor,
    Shl,
    Sar,
    Shr,
    CmpEq,
    CmpNe,
    CmpLt,
    CmpLe,
    CmpGt,
    CmpGe,
    CmpLtU,
    CmpLeU,
    CmpGtU,
    CmpGeU,
}

impl BinIr {
    /// Whether the operation is commutative.
    pub fn commutative(self) -> bool {
        matches!(
            self,
            BinIr::Add
                | BinIr::Mul
                | BinIr::And
                | BinIr::Or
                | BinIr::Xor
                | BinIr::CmpEq
                | BinIr::CmpNe
        )
    }

    /// Whether this is a comparison producing 0/1.
    pub fn is_compare(self) -> bool {
        matches!(
            self,
            BinIr::CmpEq
                | BinIr::CmpNe
                | BinIr::CmpLt
                | BinIr::CmpLe
                | BinIr::CmpGt
                | BinIr::CmpGe
                | BinIr::CmpLtU
                | BinIr::CmpLeU
                | BinIr::CmpGtU
                | BinIr::CmpGeU
        )
    }

    /// Evaluates the operation on two i64 values (C-like semantics,
    /// wrapping; division by zero yields 0 — callers trap separately).
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            BinIr::Add => a.wrapping_add(b),
            BinIr::Sub => a.wrapping_sub(b),
            BinIr::Mul => a.wrapping_mul(b),
            BinIr::Div => {
                if b == 0 || (a == i64::MIN && b == -1) {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinIr::Rem => {
                if b == 0 || (a == i64::MIN && b == -1) {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinIr::DivU => {
                if b == 0 {
                    0
                } else {
                    ((a as u64) / (b as u64)) as i64
                }
            }
            BinIr::RemU => {
                if b == 0 {
                    0
                } else {
                    ((a as u64) % (b as u64)) as i64
                }
            }
            BinIr::And => a & b,
            BinIr::Or => a | b,
            BinIr::Xor => a ^ b,
            BinIr::Shl => a.wrapping_shl(b as u32 & 63),
            BinIr::Sar => a.wrapping_shr(b as u32 & 63),
            BinIr::Shr => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
            BinIr::CmpEq => (a == b) as i64,
            BinIr::CmpNe => (a != b) as i64,
            BinIr::CmpLt => (a < b) as i64,
            BinIr::CmpLe => (a <= b) as i64,
            BinIr::CmpGt => (a > b) as i64,
            BinIr::CmpGe => (a >= b) as i64,
            BinIr::CmpLtU => ((a as u64) < (b as u64)) as i64,
            BinIr::CmpLeU => ((a as u64) <= (b as u64)) as i64,
            BinIr::CmpGtU => ((a as u64) > (b as u64)) as i64,
            BinIr::CmpGeU => ((a as u64) >= (b as u64)) as i64,
        }
    }
}

/// Call target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallTarget {
    /// User function by index into the program's function table.
    Func(usize),
    /// Runtime builtin.
    Builtin(Builtin),
    /// Indirect through a function-pointer value (a
    /// [`FUNC_PTR_BASE`]-tagged index).
    Indirect(Operand),
}

/// One IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = value`.
    Const {
        /// Destination.
        dst: Temp,
        /// Immediate.
        value: i64,
    },
    /// `dst = src`.
    Mov {
        /// Destination.
        dst: Temp,
        /// Source.
        src: Operand,
    },
    /// `dst = a op b`.
    Bin {
        /// Destination.
        dst: Temp,
        /// Operation.
        op: BinIr,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = *(addr)` with the given width; `signed` selects sign- vs
    /// zero-extension.
    Load {
        /// Destination.
        dst: Temp,
        /// Address.
        addr: Operand,
        /// 1, 4, or 8 bytes.
        width: u8,
        /// Sign-extend narrower loads.
        signed: bool,
    },
    /// `*(addr) = value` with the given width.
    Store {
        /// Address.
        addr: Operand,
        /// Stored value.
        value: Operand,
        /// 1, 4, or 8 bytes.
        width: u8,
    },
    /// `dst = frame_pointer + offset` — address of a stack slot.
    FrameAddr {
        /// Destination.
        dst: Temp,
        /// Byte offset within the frame.
        offset: u32,
    },
    /// `memmove(dst_addr, src_addr, len)` — struct assignment.
    MemCopy {
        /// Destination address.
        dst_addr: Operand,
        /// Source address.
        src_addr: Operand,
        /// Length in bytes.
        len: u64,
    },
    /// Function call; `dst` receives the return value if any.
    Call {
        /// Result register.
        dst: Option<Temp>,
        /// Callee.
        target: CallTarget,
        /// Arguments.
        args: Vec<Operand>,
        /// For allocation builtins: index into
        /// [`ProgramIr::alloc_sites`], so the VM can attribute the
        /// allocation to its source program point.
        site: Option<u32>,
    },
    /// The paper's primitive: `dst = value`, opaque to the optimizer, with
    /// `base` kept live until this instruction executes.
    KeepLive {
        /// Destination (the protected, opaque value).
        dst: Temp,
        /// The pointer value being protected.
        value: Operand,
        /// The base pointer to keep visible (None = opacity only).
        base: Option<Operand>,
    },
    /// Debug-mode check: verifies `value` and `base` point into the same
    /// heap object (via the collector's page map), then `dst = value`.
    /// Also has the full `KeepLive` effect.
    CheckSame {
        /// Destination.
        dst: Temp,
        /// Derived pointer.
        value: Operand,
        /// Base pointer.
        base: Operand,
    },
    /// Return.
    Ret {
        /// Optional return value.
        value: Option<Operand>,
    },
    /// Unconditional jump (must be last in a block).
    Jump {
        /// Target block.
        target: BlockId,
    },
    /// Conditional branch (must be last in a block).
    Branch {
        /// Condition (non-zero = taken).
        cond: Operand,
        /// Taken target.
        if_true: BlockId,
        /// Fallthrough target.
        if_false: BlockId,
    },
}

impl Instr {
    /// The destination temp, if the instruction defines one.
    pub fn dst(&self) -> Option<Temp> {
        match self {
            Instr::Const { dst, .. }
            | Instr::Mov { dst, .. }
            | Instr::Bin { dst, .. }
            | Instr::Load { dst, .. }
            | Instr::FrameAddr { dst, .. }
            | Instr::KeepLive { dst, .. }
            | Instr::CheckSame { dst, .. } => Some(*dst),
            Instr::Call { dst, .. } => *dst,
            _ => None,
        }
    }

    /// Collects the temps this instruction reads.
    pub fn uses(&self, out: &mut Vec<Temp>) {
        let mut push = |o: &Operand| {
            if let Operand::Temp(t) = o {
                out.push(*t);
            }
        };
        match self {
            Instr::Const { .. } | Instr::FrameAddr { .. } | Instr::Jump { .. } => {}
            Instr::Mov { src, .. } => push(src),
            Instr::Bin { a, b, .. } => {
                push(a);
                push(b);
            }
            Instr::Load { addr, .. } => push(addr),
            Instr::Store { addr, value, .. } => {
                push(addr);
                push(value);
            }
            Instr::MemCopy {
                dst_addr, src_addr, ..
            } => {
                push(dst_addr);
                push(src_addr);
            }
            Instr::Call { target, args, .. } => {
                if let CallTarget::Indirect(o) = target {
                    push(o);
                }
                for a in args {
                    push(a);
                }
            }
            Instr::KeepLive { value, base, .. } => {
                push(value);
                if let Some(b) = base {
                    push(b);
                }
            }
            Instr::CheckSame { value, base, .. } => {
                push(value);
                push(base);
            }
            Instr::Ret { value } => {
                if let Some(v) = value {
                    push(v);
                }
            }
            Instr::Branch { cond, .. } => push(cond),
        }
    }

    /// Whether the instruction has side effects beyond defining `dst`
    /// (and therefore must not be removed even if `dst` is dead).
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            Instr::Store { .. }
                | Instr::MemCopy { .. }
                | Instr::Call { .. }
                | Instr::CheckSame { .. }
                | Instr::Ret { .. }
                | Instr::Jump { .. }
                | Instr::Branch { .. }
        )
    }

    /// Whether the instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Instr::Ret { .. } | Instr::Jump { .. } | Instr::Branch { .. }
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Const { dst, value } => write!(f, "{dst} = {value}"),
            Instr::Mov { dst, src } => write!(f, "{dst} = {src}"),
            Instr::Bin { dst, op, a, b } => write!(f, "{dst} = {op:?}({a}, {b})"),
            Instr::Load {
                dst,
                addr,
                width,
                signed,
            } => {
                write!(
                    f,
                    "{dst} = load{width}{} [{addr}]",
                    if *signed { "s" } else { "u" }
                )
            }
            Instr::Store { addr, value, width } => {
                write!(f, "store{width} [{addr}] = {value}")
            }
            Instr::FrameAddr { dst, offset } => write!(f, "{dst} = fp+{offset}"),
            Instr::MemCopy {
                dst_addr,
                src_addr,
                len,
            } => {
                write!(f, "memcopy [{dst_addr}] <- [{src_addr}] x{len}")
            }
            Instr::Call {
                dst, target, args, ..
            } => {
                if let Some(d) = dst {
                    write!(f, "{d} = ")?;
                }
                match target {
                    CallTarget::Func(i) => write!(f, "call fn#{i}")?,
                    CallTarget::Builtin(b) => write!(f, "call {b:?}")?,
                    CallTarget::Indirect(o) => write!(f, "call *{o}")?,
                }
                write!(f, "(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Instr::KeepLive { dst, value, base } => match base {
                Some(b) => write!(f, "{dst} = keep_live({value}, {b})"),
                None => write!(f, "{dst} = keep_live({value})"),
            },
            Instr::CheckSame { dst, value, base } => {
                write!(f, "{dst} = gc_same_obj({value}, {base})")
            }
            Instr::Ret { value: Some(v) } => write!(f, "ret {v}"),
            Instr::Ret { value: None } => write!(f, "ret"),
            Instr::Jump { target } => write!(f, "jump {target}"),
            Instr::Branch {
                cond,
                if_true,
                if_false,
            } => {
                write!(f, "br {cond} ? {if_true} : {if_false}")
            }
        }
    }
}

/// A basic block: straight-line instructions ending in a terminator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Block {
    /// Instructions; the last one is the terminator once sealed.
    pub instrs: Vec<Instr>,
}

impl Block {
    /// Successor block ids.
    pub fn successors(&self) -> Vec<BlockId> {
        match self.instrs.last() {
            Some(Instr::Jump { target }) => vec![*target],
            Some(Instr::Branch {
                if_true, if_false, ..
            }) => vec![*if_true, *if_false],
            _ => vec![],
        }
    }
}

/// A lowered function.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncIr {
    /// Source-level name.
    pub name: String,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Number of temps allocated.
    pub temp_count: u32,
    /// Temps holding the incoming parameters (in order).
    pub param_temps: Vec<Temp>,
    /// Frame size in bytes (memory-resident locals).
    pub frame_size: u32,
    /// Whether the function returns a value.
    pub returns_value: bool,
}

impl FuncIr {
    /// Pretty-prints the function for debugging/tests.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fn {} (frame {} bytes, {} temps)",
            self.name, self.frame_size, self.temp_count
        );
        for (i, b) in self.blocks.iter().enumerate() {
            let _ = writeln!(out, "bb{i}:");
            for ins in &b.instrs {
                let _ = writeln!(out, "    {ins}");
            }
        }
        out
    }

    /// Total instruction count (a proxy for code size before codegen).
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }
}

/// Source location of one allocation call, recorded during lowering so
/// the VM (and gcprof) can attribute every heap allocation back to the
/// program point that asked for it.
///
/// Positions are bound in two steps. Lowering records the call
/// expression's [`cfront::NodeId`] and span; both refer to the *original*
/// source the program was parsed from (the annotator preserves the ids
/// and spans of the nodes it rewrites). After compilation —
/// whether fresh or served from the compilation cache — the sites are
/// re-bound against the requesting program's AST and source text via
/// [`ProgramIr::rebind_alloc_sites`], which is what keeps `line`/`col`
/// labels correct when a structurally-identical but differently-formatted
/// program shares cached IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocSite {
    /// Name of the enclosing function.
    pub func: String,
    /// Allocation primitive: `"malloc"`, `"calloc"`, or `"realloc"`.
    pub primitive: &'static str,
    /// Id of the call expression in the parsed AST — the stable
    /// correspondence between structurally-equal programs (the parser
    /// assigns ids in syntax order, which formatting cannot change).
    pub node: cfront::NodeId,
    /// Byte offset of the call expression in the original source text.
    pub span_start: usize,
    /// 1-based source line (0 until resolved).
    pub line: usize,
    /// 1-based source column (0 until resolved).
    pub col: usize,
}

impl AllocSite {
    /// The flamegraph-frame label for the site: `primitive@line:col`.
    pub fn label(&self) -> String {
        format!("{}@{}:{}", self.primitive, self.line, self.col)
    }
}

/// A whole lowered program.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramIr {
    /// Functions; indices are the [`CallTarget::Func`] ids.
    pub funcs: Vec<FuncIr>,
    /// Index of `main`.
    pub main: usize,
    /// Initial contents of the globals region (variables, then strings).
    pub globals_image: Vec<u8>,
    /// Size of the globals region actually used.
    pub globals_size: u64,
    /// Allocation sites, indexed by the `site` field of [`Instr::Call`].
    pub alloc_sites: Vec<AllocSite>,
}

impl ProgramIr {
    /// Finds a function index by name.
    pub fn func_index(&self, name: &str) -> Option<usize> {
        self.funcs.iter().position(|f| f.name == name)
    }

    /// Resolves every allocation site's `line`/`col` from its recorded
    /// `span_start` against the original source text. Prefer
    /// [`Self::rebind_alloc_sites`], which also re-binds the spans
    /// themselves to the requesting program's AST.
    pub fn resolve_alloc_sites(&mut self, source: &str) {
        for site in &mut self.alloc_sites {
            let (line, col) = cfront::span::line_col(source, site.span_start);
            site.line = line;
            site.col = col;
        }
    }

    /// Re-binds every allocation site to the *requesting* program: each
    /// site's span is looked up by [`cfront::NodeId`] in `spans` (a map
    /// built from the requester's freshly parsed AST) and its `line`/`col`
    /// resolved against the requester's `source`.
    ///
    /// This runs after every compilation, cached or not. On a cache hit
    /// the shared IR carries the donor program's byte offsets — without
    /// re-binding, a whitespace-divergent but hash-equal program would
    /// report the donor's `malloc@line:col` coordinates in its own
    /// profiles. A node missing from `spans` (not expected in practice)
    /// keeps its recorded span.
    pub fn rebind_alloc_sites(
        &mut self,
        spans: &std::collections::HashMap<cfront::NodeId, usize>,
        source: &str,
    ) {
        for site in &mut self.alloc_sites {
            if let Some(&start) = spans.get(&site.node) {
                site.span_start = start;
            }
            let (line, col) = cfront::span::line_col(source, site.span_start);
            site.line = line;
            site.col = col;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binir_eval_basics() {
        assert_eq!(BinIr::Add.eval(2, 3), 5);
        assert_eq!(BinIr::Sub.eval(2, 3), -1);
        assert_eq!(BinIr::Div.eval(7, 2), 3);
        assert_eq!(BinIr::Div.eval(7, 0), 0, "division by zero is defused");
        assert_eq!(BinIr::CmpLt.eval(-1, 0), 1);
        assert_eq!(BinIr::CmpLtU.eval(-1, 0), 0, "-1 is huge unsigned");
        assert_eq!(BinIr::Shr.eval(-8, 1), (u64::MAX / 2 - 3) as i64);
        assert_eq!(BinIr::Sar.eval(-8, 1), -4);
    }

    #[test]
    fn instr_uses_and_dst() {
        let i = Instr::Bin {
            dst: Temp(3),
            op: BinIr::Add,
            a: Operand::Temp(Temp(1)),
            b: Operand::Const(4),
        };
        assert_eq!(i.dst(), Some(Temp(3)));
        let mut u = Vec::new();
        i.uses(&mut u);
        assert_eq!(u, vec![Temp(1)]);
    }

    #[test]
    fn keep_live_base_is_a_use() {
        // The liveness guarantee of the paper's primitive rests on this.
        let i = Instr::KeepLive {
            dst: Temp(5),
            value: Operand::Temp(Temp(2)),
            base: Some(Operand::Temp(Temp(1))),
        };
        let mut u = Vec::new();
        i.uses(&mut u);
        assert!(u.contains(&Temp(1)), "base must be kept live");
        assert!(u.contains(&Temp(2)));
        assert!(
            !i.has_side_effects(),
            "keep_live with dead dst may be removed"
        );
    }

    #[test]
    fn check_same_has_side_effects() {
        let i = Instr::CheckSame {
            dst: Temp(5),
            value: Operand::Temp(Temp(2)),
            base: Operand::Temp(Temp(1)),
        };
        assert!(i.has_side_effects(), "the runtime check may abort");
    }

    #[test]
    fn block_successors() {
        let b = Block {
            instrs: vec![Instr::Branch {
                cond: Operand::Temp(Temp(0)),
                if_true: BlockId(1),
                if_false: BlockId(2),
            }],
        };
        assert_eq!(b.successors(), vec![BlockId(1), BlockId(2)]);
    }
}
