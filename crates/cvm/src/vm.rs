//! The executing virtual machine.
//!
//! Runs IR against the simulated address space with the conservative
//! collector attached. Collections are triggered inside allocation
//! builtins (the call-site model); the roots at a collection are:
//!
//! * the globals region and the live portion of the stack (frame slots),
//!   scanned conservatively word-by-word, and
//! * per suspended frame, exactly the temps *live across the active call*
//!   (from [`crate::liveness::gc_root_maps`]) — the VM's "registers".
//!
//! Dead temps are not roots. That is what makes the paper's disguised-
//! pointer hazard reproducible: optimize away the last live copy of a
//! pointer and the object really is collected under your feet.

use crate::ir::*;
use crate::liveness::gc_root_maps;
use cfront::sema::Builtin;
use gcheap::{GcHeap, HeapConfig, HeapStats, MemFault, Memory, RootSet, GLOBAL_BASE};
use std::collections::HashMap;
use std::fmt;

/// VM configuration.
#[derive(Debug, Clone)]
pub struct VmOptions {
    /// Collector configuration.
    pub heap_config: HeapConfig,
    /// Bytes served to `getchar`.
    pub input: Vec<u8>,
    /// Instruction budget (guards against runaway programs).
    pub max_steps: u64,
    /// Trap loads/stores that hit heap addresses outside any allocated
    /// object (observes premature collection deterministically).
    pub trap_uaf: bool,
    /// The Extensions-section dynamic check: verify that every pointer
    /// stored into the heap or statics is an object *base* (required by
    /// [`gcheap::PointerPolicy::InteriorFromRootsOnly`]).
    pub check_base_stores: bool,
    /// Heap region size in bytes.
    pub heap_bytes: usize,
    /// Stack region size in bytes.
    pub stack_bytes: usize,
    /// Trace sink shared with the attached collector: the heap emits its
    /// per-collection timeline events here, and the VM emits one
    /// `("vm", "run")` summary when execution completes. Disabled by
    /// default — the disabled handle adds no measurable overhead.
    pub trace: gctrace::TraceHandle,
    /// Profiling sink shared with the attached collector: pause/size
    /// histograms and the pause timeline are recorded by the heap,
    /// per-allocation-site counters (keyed by the VM's shadow call
    /// stack) by the VM, and a final heap census when the run ends.
    /// Disabled by default; the disabled handle never builds a stack key.
    pub prof: gcprof::ProfHandle,
    /// Snapshot sink: when enabled, the VM records a `begin` heap-graph
    /// snapshot at its first allocation and an `end` snapshot when the
    /// run completes (before the final sweep, so floating garbage is
    /// still visible). Disabled by default; the disabled handle never
    /// walks the heap.
    pub snap: gcsnap::SnapHandle,
    /// Cross-check the snapshot's reachable set against the collector's
    /// shadow liveness at the end of the run: after a full collection
    /// and sweep, every surviving object must be reachable in the
    /// snapshot graph (and vice versa, trivially). A divergence is a
    /// [`VmError::SnapshotOracle`]. Used by the fuzzer's paranoid modes.
    pub snapshot_oracle: bool,
}

impl Default for VmOptions {
    fn default() -> Self {
        VmOptions {
            heap_config: HeapConfig::default(),
            input: Vec::new(),
            max_steps: 2_000_000_000,
            trap_uaf: true,
            check_base_stores: false,
            heap_bytes: 32 << 20,
            stack_bytes: 1 << 20,
            trace: gctrace::TraceHandle::disabled(),
            prof: gcprof::ProfHandle::disabled(),
            snap: gcsnap::SnapHandle::disabled(),
            snapshot_oracle: false,
        }
    }
}

/// Positional labels for the root ranges [`Vm::roots`] builds: the
/// globals region first, the live stack second. Precise root words
/// (live temps) are labeled `reg` by the snapshot walk itself.
const ROOT_LABELS: &[&str] = &["globals", "stack"];

/// Dynamic execution counts used for cycle accounting.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Executions of each basic block, per function.
    pub block_counts: Vec<Vec<u64>>,
    /// Builtin invocation counts.
    pub builtin_calls: HashMap<Builtin, u64>,
    /// Total bytes processed by block builtins (memcpy, strlen, …).
    pub builtin_byte_work: u64,
}

impl Profile {
    /// Total dynamic IR instructions implied by the block counts.
    pub fn dynamic_instrs(&self, prog: &ProgramIr) -> u64 {
        let mut total = 0;
        for (f, counts) in self.block_counts.iter().enumerate() {
            for (b, &c) in counts.iter().enumerate() {
                total += c * prog.funcs[f].blocks[b].instrs.len() as u64;
            }
        }
        total
    }
}

/// Successful execution result.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Bytes written by `putchar`/`putstr`/`putint`.
    pub output: Vec<u8>,
    /// `main`'s return value or the `exit` code.
    pub exit_code: i64,
    /// Execution profile.
    pub profile: Profile,
    /// Collector statistics.
    pub heap: HeapStats,
    /// Instructions executed.
    pub steps: u64,
}

/// Execution failure.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// Simulated memory fault.
    Fault(MemFault),
    /// A `GC_same_obj` / `GC_pre_incr` check failed: pointer arithmetic
    /// left its object.
    CheckFailed {
        /// Function in which the check fired.
        func: String,
        /// The derived pointer value.
        value: u64,
        /// The base pointer value.
        base: u64,
    },
    /// Load/store hit a heap address with no allocated object — the
    /// observable symptom of premature collection.
    UseAfterFree {
        /// Function performing the access.
        func: String,
        /// Offending address.
        addr: u64,
    },
    /// Heap exhausted even after collection.
    OutOfMemory,
    /// Stack exhausted.
    StackOverflow,
    /// Instruction budget exceeded.
    StepLimit,
    /// `abort()` was called.
    Aborted,
    /// The Extensions-mode base-store assertion failed: an interior
    /// pointer was stored into the heap or statically allocated memory.
    InteriorStored {
        /// Function performing the store.
        func: String,
        /// The interior pointer value.
        value: u64,
        /// The object base it points into.
        base: u64,
    },
    /// A caller expected a value but the callee returned without one
    /// (`return;` or fall-through in a function whose result is used).
    MissingReturn {
        /// The callee that produced no value.
        func: String,
    },
    /// Malformed program (bad function pointer, missing target, …).
    Malformed(String),
    /// The end-of-run snapshot oracle found a disagreement between the
    /// snapshot graph's reachable set and the collector's shadow
    /// liveness (objects that survived a full collection).
    SnapshotOracle(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Fault(e) => write!(f, "{e}"),
            VmError::CheckFailed { func, value, base } => write!(
                f,
                "pointer arithmetic check failed in '{func}': {value:#x} not in same object as {base:#x}"
            ),
            VmError::UseAfterFree { func, addr } => {
                write!(f, "access to unallocated heap memory at {addr:#x} in '{func}' (premature collection?)")
            }
            VmError::OutOfMemory => write!(f, "out of memory"),
            VmError::StackOverflow => write!(f, "stack overflow"),
            VmError::StepLimit => write!(f, "instruction budget exceeded"),
            VmError::Aborted => write!(f, "abort() called"),
            VmError::InteriorStored { func, value, base } => write!(
                f,
                "interior pointer {value:#x} (base {base:#x}) stored to collector-visible memory in '{func}' under base-only policy"
            ),
            VmError::MissingReturn { func } => {
                write!(f, "'{func}' returned no value but its caller uses one")
            }
            VmError::Malformed(m) => write!(f, "malformed program: {m}"),
            VmError::SnapshotOracle(m) => {
                write!(f, "snapshot oracle divergence: {m}")
            }
        }
    }
}

impl std::error::Error for VmError {}

impl From<MemFault> for VmError {
    fn from(e: MemFault) -> Self {
        VmError::Fault(e)
    }
}

/// Runs a lowered program to completion.
///
/// # Errors
///
/// See [`VmError`]; in particular `CheckFailed` reproduces the paper's
/// checking mode catching bad pointer arithmetic, and `UseAfterFree`
/// observes premature collection caused by disguised pointers.
pub fn run(prog: &ProgramIr, opts: &VmOptions) -> Result<ExecOutcome, VmError> {
    Vm::new(prog, opts)?.run()
}

struct Frame {
    func: usize,
    block: u32,
    ip: u32,
    temps: Vec<i64>,
    dst_in_caller: Option<Temp>,
}

struct Vm<'a> {
    prog: &'a ProgramIr,
    opts: &'a VmOptions,
    mem: Memory,
    heap: GcHeap,
    frames: Vec<Frame>,
    sp: u64,
    input_pos: usize,
    output: Vec<u8>,
    profile: Profile,
    steps: u64,
    gc_maps: Vec<HashMap<(u32, u32), Vec<Temp>>>,
    exit: Option<i64>,
    /// Whether the `begin` heap-graph snapshot has been recorded.
    begin_snapped: bool,
}

impl<'a> Vm<'a> {
    fn new(prog: &'a ProgramIr, opts: &'a VmOptions) -> Result<Self, VmError> {
        let mut mem = Memory::new(
            (prog.globals_image.len() + 4096).max(1 << 16),
            opts.stack_bytes,
            opts.heap_bytes,
        );
        for (i, b) in prog.globals_image.iter().enumerate() {
            mem.write(GLOBAL_BASE + i as u64, 1, *b as u64)?;
        }
        let mut heap = GcHeap::new(&mem, opts.heap_config.clone());
        heap.set_trace(opts.trace.clone());
        heap.set_prof(opts.prof.clone());
        heap.set_snap_sites(opts.snap.is_enabled() || opts.snapshot_oracle);
        let gc_maps = prog.funcs.iter().map(gc_root_maps).collect();
        let profile = Profile {
            block_counts: prog.funcs.iter().map(|f| vec![0; f.blocks.len()]).collect(),
            ..Profile::default()
        };
        let sp = mem.stack_top();
        Ok(Vm {
            prog,
            opts,
            mem,
            heap,
            frames: Vec::new(),
            sp,
            input_pos: 0,
            output: Vec::new(),
            profile,
            steps: 0,
            gc_maps,
            exit: None,
            begin_snapped: false,
        })
    }

    fn cur_func_name(&self) -> String {
        self.frames
            .last()
            .map(|f| self.prog.funcs[f.func].name.clone())
            .unwrap_or_else(|| "<top>".into())
    }

    fn push_frame(&mut self, func: usize, args: &[i64], dst: Option<Temp>) -> Result<(), VmError> {
        let f = &self.prog.funcs[func];
        if args.len() != f.param_temps.len() {
            return Err(VmError::Malformed(format!(
                "call to '{}' with {} args, expected {}",
                f.name,
                args.len(),
                f.param_temps.len()
            )));
        }
        let frame_size = f.frame_size as u64;
        if self.sp < gcheap::STACK_BASE + frame_size {
            return Err(VmError::StackOverflow);
        }
        self.sp -= frame_size;
        // Zero the frame so stale words cannot retain garbage.
        self.mem.fill(self.sp, 0, frame_size as usize)?;
        let mut temps = vec![0i64; f.temp_count as usize];
        for (pt, v) in f.param_temps.iter().zip(args) {
            temps[pt.0 as usize] = *v;
        }
        self.profile.block_counts[func][0] += 1;
        self.frames.push(Frame {
            func,
            block: 0,
            ip: 0,
            temps,
            dst_in_caller: dst,
        });
        Ok(())
    }

    fn pop_frame(&mut self, ret: Option<i64>) -> Result<(), VmError> {
        let frame = self.frames.pop().expect("pop with no frame");
        let f = &self.prog.funcs[frame.func];
        self.sp += f.frame_size as u64;
        if let Some(caller) = self.frames.last_mut() {
            if let Some(dst) = frame.dst_in_caller {
                // A caller-visible destination with no returned value would
                // silently become 0 — refuse, so miscompilations that drop
                // a return path surface instead of masking divergence.
                let Some(v) = ret else {
                    return Err(VmError::MissingReturn {
                        func: f.name.clone(),
                    });
                };
                caller.temps[dst.0 as usize] = v;
            }
            caller.ip += 1; // resume after the call
        } else {
            self.exit = Some(ret.unwrap_or(0));
        }
        Ok(())
    }

    fn run(mut self) -> Result<ExecOutcome, VmError> {
        self.push_frame(self.prog.main, &[], None)?;
        while self.exit.is_none() {
            self.step()?;
            self.steps += 1;
            if self.steps > self.opts.max_steps {
                return Err(VmError::StepLimit);
            }
        }
        // Heap-graph snapshots: `begin` was recorded at the first
        // allocation (or now, for a program that never allocated), `end`
        // before the final sweep so floating garbage is still visible.
        if self.opts.snap.is_enabled() {
            let roots = self.roots();
            if !self.begin_snapped {
                self.begin_snapped = true;
                self.opts.snap.record("begin", || {
                    self.heap.snapshot(&self.mem, &roots, ROOT_LABELS)
                });
            }
            self.opts
                .snap
                .record("end", || self.heap.snapshot(&self.mem, &roots, ROOT_LABELS));
        }
        if self.opts.snapshot_oracle {
            self.check_snapshot_oracle()?;
        }
        // End-of-run stats barrier: retire outstanding lazy-sweep debt so
        // the final HeapStats and census report no pending queue work.
        self.heap.sweep_all();
        // The end-of-run census: live objects/bytes per size class,
        // fragmentation, blacklist pressure. The walk only happens when
        // profiling is enabled.
        self.opts.prof.record_census(|| self.heap.census());
        let outcome = ExecOutcome {
            output: self.output,
            exit_code: self.exit.unwrap_or(0),
            profile: self.profile,
            heap: self.heap.stats(),
            steps: self.steps,
        };
        // Unify the execution profile and the collector stats behind the
        // same sink as the per-collection timeline.
        self.opts.trace.emit(|| {
            let blocks_executed: u64 = outcome.profile.block_counts.iter().flatten().sum();
            let builtin_calls: u64 = outcome.profile.builtin_calls.values().sum();
            gctrace::Event::new("vm", "run")
                .field("exit_code", outcome.exit_code)
                .field("steps", outcome.steps)
                .field("output_bytes", outcome.output.len())
                .field("blocks_executed", blocks_executed)
                .field("dynamic_instrs", outcome.profile.dynamic_instrs(self.prog))
                .field("builtin_calls", builtin_calls)
                .field("builtin_byte_work", outcome.profile.builtin_byte_work)
                .field("collections", outcome.heap.collections)
                .field("pages_swept_lazily", outcome.heap.pages_swept_lazily)
                .field("total_pause_ns", outcome.heap.total_pause_ns)
        });
        Ok(outcome)
    }

    fn operand(&self, o: Operand) -> i64 {
        match o {
            Operand::Const(c) => c,
            Operand::Temp(t) => self.frames.last().expect("active frame").temps[t.0 as usize],
        }
    }

    fn set_temp(&mut self, t: Temp, v: i64) {
        self.frames.last_mut().expect("active frame").temps[t.0 as usize] = v;
    }

    fn goto(&mut self, target: BlockId) {
        let frame = self.frames.last_mut().expect("active frame");
        frame.block = target.0;
        frame.ip = 0;
        self.profile.block_counts[frame.func][target.0 as usize] += 1;
    }

    fn check_heap_access(&self, addr: u64) -> Result<(), VmError> {
        if self.opts.trap_uaf && self.mem.in_heap(addr) && !self.heap.is_allocated(addr) {
            return Err(VmError::UseAfterFree {
                func: self.cur_func_name(),
                addr,
            });
        }
        Ok(())
    }

    fn frame_addr(&self, offset: u32) -> u64 {
        self.sp + offset as u64
    }

    fn step(&mut self) -> Result<(), VmError> {
        let frame = self.frames.last().expect("active frame");
        let func = frame.func;
        let (block, ip) = (frame.block, frame.ip);
        let instrs = &self.prog.funcs[func].blocks[block as usize].instrs;
        let Some(instr) = instrs.get(ip as usize) else {
            return Err(VmError::Malformed(format!(
                "fell off block bb{block} in '{}'",
                self.prog.funcs[func].name
            )));
        };
        // Clone small instructions to end the borrow (Call args are the
        // only allocation, and calls are comparatively rare).
        let instr = instr.clone();
        match instr {
            Instr::Const { dst, value } => {
                self.set_temp(dst, value);
                self.advance();
            }
            Instr::Mov { dst, src } => {
                let v = self.operand(src);
                self.set_temp(dst, v);
                self.advance();
            }
            Instr::Bin { dst, op, a, b } => {
                let va = self.operand(a);
                let vb = self.operand(b);
                self.set_temp(dst, op.eval(va, vb));
                self.advance();
            }
            Instr::Load {
                dst,
                addr,
                width,
                signed,
            } => {
                let a = self.operand(addr) as u64;
                self.check_heap_access(a)?;
                let raw = self.mem.read(a, width as u32)?;
                let v = extend(raw, width, signed);
                self.set_temp(dst, v);
                self.advance();
            }
            Instr::Store { addr, value, width } => {
                let a = self.operand(addr) as u64;
                self.check_heap_access(a)?;
                let v = self.operand(value) as u64;
                if self.opts.check_base_stores && width == 8 {
                    self.check_base_store(a, v)?;
                }
                self.mem.write(a, width as u32, v)?;
                if self.heap.barrier_active() {
                    if width == 8 {
                        self.heap.write_barrier(a, v);
                    } else {
                        // A narrow store can still turn the containing
                        // word into something the conservative scan reads
                        // as a pointer — re-scan the touched bytes.
                        self.heap.write_barrier_range(&self.mem, a, width as u64);
                    }
                }
                self.advance();
            }
            Instr::FrameAddr { dst, offset } => {
                let a = self.frame_addr(offset) as i64;
                self.set_temp(dst, a);
                self.advance();
            }
            Instr::MemCopy {
                dst_addr,
                src_addr,
                len,
            } => {
                let d = self.operand(dst_addr) as u64;
                let s = self.operand(src_addr) as u64;
                self.check_heap_access(d)?;
                self.check_heap_access(s)?;
                self.mem.copy(d, s, len as usize)?;
                if self.heap.barrier_active() {
                    self.heap.write_barrier_range(&self.mem, d, len);
                }
                self.advance();
            }
            Instr::KeepLive { dst, value, .. } => {
                // Semantically the identity; its force is entirely static.
                let v = self.operand(value);
                self.set_temp(dst, v);
                self.advance();
            }
            Instr::CheckSame { dst, value, base } => {
                let v = self.operand(value) as u64;
                let b = self.operand(base) as u64;
                self.exec_same_obj_check(v, b)?;
                self.set_temp(dst, v as i64);
                self.advance();
            }
            Instr::Ret { value } => {
                let v = value.map(|o| self.operand(o));
                self.pop_frame(v)?;
            }
            Instr::Jump { target } => self.goto(target),
            Instr::Branch {
                cond,
                if_true,
                if_false,
            } => {
                let c = self.operand(cond);
                self.goto(if c != 0 { if_true } else { if_false });
            }
            Instr::Call {
                dst,
                target,
                args,
                site,
            } => {
                let argv: Vec<i64> = args.iter().map(|a| self.operand(*a)).collect();
                match target {
                    CallTarget::Func(idx) => {
                        self.push_frame(idx, &argv, dst)?;
                        // Note: the caller's ip stays at the call until return.
                    }
                    CallTarget::Builtin(b) => {
                        let ret = self.builtin(b, &argv, site)?;
                        if self.exit.is_some() {
                            return Ok(());
                        }
                        if let Some(d) = dst {
                            self.set_temp(d, ret);
                        }
                        self.advance();
                    }
                    CallTarget::Indirect(o) => {
                        let v = self.operand(o);
                        let idx = v - FUNC_PTR_BASE;
                        if idx < 0 || idx as usize >= self.prog.funcs.len() {
                            return Err(VmError::Malformed(format!(
                                "indirect call through bad function pointer {v:#x}"
                            )));
                        }
                        self.push_frame(idx as usize, &argv, dst)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn advance(&mut self) {
        self.frames.last_mut().expect("active frame").ip += 1;
    }

    /// The Extensions-section assertion: a pointer-sized store into the
    /// heap or statics must store an object base (or a non-heap value).
    fn check_base_store(&mut self, addr: u64, value: u64) -> Result<(), VmError> {
        use gcheap::Region;
        let collector_visible = matches!(
            self.mem.region_of(addr),
            Some(Region::Heap | Region::Globals)
        );
        if !collector_visible || !self.mem.in_heap(value) {
            return Ok(());
        }
        match self.heap.base(value) {
            Some(b) if b != value => Err(VmError::InteriorStored {
                func: self.cur_func_name(),
                value,
                base: b,
            }),
            _ => Ok(()),
        }
    }

    /// `GC_same_obj` semantics: heap pointers must share an object; pairs
    /// outside the collected heap are not checked (the paper restricts
    /// attention to heap pointers).
    fn exec_same_obj_check(&mut self, value: u64, base: u64) -> Result<(), VmError> {
        if !self.mem.in_heap(base) {
            return Ok(());
        }
        if self.heap.same_obj(value, base) {
            Ok(())
        } else {
            Err(VmError::CheckFailed {
                func: self.cur_func_name(),
                value,
                base,
            })
        }
    }

    /// Collects the current root set: globals, live stack, and live temps
    /// of every frame (each frame is suspended at a call instruction).
    fn roots(&self) -> RootSet {
        let mut roots = RootSet::new();
        roots.add_range(GLOBAL_BASE, GLOBAL_BASE + self.prog.globals_size + 4096);
        roots.add_range(self.sp, self.mem.stack_top());
        for frame in &self.frames {
            let map = &self.gc_maps[frame.func];
            if let Some(live) = map.get(&(frame.block, frame.ip)) {
                for t in live {
                    roots.add_word(frame.temps[t.0 as usize] as u64);
                }
            } else {
                // Not at a call (shouldn't happen for suspended frames);
                // be conservative and take every temp.
                for &v in &frame.temps {
                    roots.add_word(v as u64);
                }
            }
        }
        roots
    }

    /// The allocation-site key for `site` under the current shadow call
    /// stack: frame names joined with `;`, ending in the
    /// `primitive@line:col` site label — flamegraph-folded frame order.
    fn site_key(&self, site: Option<u32>) -> String {
        let mut key = String::new();
        for frame in &self.frames {
            key.push_str(&self.prog.funcs[frame.func].name);
            key.push(';');
        }
        match site {
            Some(i) => key.push_str(&self.prog.alloc_sites[i as usize].label()),
            None => key.push_str("alloc@?"),
        }
        key
    }

    /// The snapshot's shadow-liveness cross-check: run a full collection
    /// and retire all sweep debt, so the heap holds exactly what the
    /// marker proves live, then snapshot it with the same roots. Every
    /// surviving object must be reachable in the snapshot graph — the
    /// snapshot resolves pointer words with the marker's own rules, so
    /// any floating node here means the two walks disagree about
    /// liveness. (The other direction is structural: reachable nodes are
    /// snapshot nodes, and every snapshot node survived the collection.)
    fn check_snapshot_oracle(&mut self) -> Result<(), VmError> {
        let roots = self.roots();
        // Two collections on purpose: the first one may merely *finish*
        // an in-flight incremental cycle, whose snapshot-at-the-beginning
        // marks (taken against mid-run roots, plus allocate-black births)
        // legitimately keep mid-cycle garbage alive. The second runs
        // against the retired heap, so afterwards the heap holds exactly
        // what the marker proves live from the end-of-run roots.
        self.heap.collect(&mut self.mem, &roots);
        self.heap.collect(&mut self.mem, &roots);
        self.heap.sweep_all();
        let snap = self.heap.snapshot(&self.mem, &roots, ROOT_LABELS);
        let a = gcsnap::analyze(&snap);
        if a.floating_objects != 0 {
            let first = snap
                .nodes
                .iter()
                .enumerate()
                .find(|&(i, _)| !a.reachable[i])
                .map(|(i, n)| {
                    let referrers: Vec<u32> = snap
                        .nodes
                        .iter()
                        .enumerate()
                        .filter(|(_, m)| m.edges.contains(&(i as u32)))
                        .map(|(j, _)| j as u32)
                        .collect();
                    format!(
                        "node {i} at {:#x} ({} bytes, marked={}, young={}, site={:?}, \
                         referrers={referrers:?})",
                        n.addr,
                        n.size,
                        n.marked,
                        n.young,
                        snap.site_of(i as u32)
                    )
                })
                .unwrap_or_default();
            return Err(VmError::SnapshotOracle(format!(
                "{} shadow-live objects ({} bytes) are unreachable in the \
                 snapshot graph; first: {first}",
                a.floating_objects, a.floating_bytes
            )));
        }
        Ok(())
    }

    fn allocate(&mut self, size: i64, site: Option<u32>) -> Result<i64, VmError> {
        let size = size.max(0) as u64;
        if self.opts.snap.is_enabled() && !self.begin_snapped {
            self.begin_snapped = true;
            let roots = self.roots();
            self.opts.snap.record("begin", || {
                self.heap.snapshot(&self.mem, &roots, ROOT_LABELS)
            });
        }
        // Build the site key eagerly only when an attached trace or
        // profile will consume it — it both attributes the allocation to
        // its stack and labels any collection this request triggers. The
        // uninstrumented hot path pays one branch and builds no string.
        let label = self.heap.attribution_enabled().then(|| self.site_key(site));
        let roots = self.roots();
        match self
            .heap
            .alloc_with_roots_sited(&mut self.mem, size, &roots, label.as_deref())
        {
            Ok(addr) => {
                let prof = self.heap.prof().clone();
                match label {
                    Some(l) => prof.record_site(size, move || l),
                    // Unreachable in practice (an enabled profile implies
                    // attribution), kept so the closure contract is
                    // honoured whatever the handle combination.
                    None => prof.record_site(size, || self.site_key(site)),
                }
                Ok(addr as i64)
            }
            Err(_) => Err(VmError::OutOfMemory),
        }
    }

    fn builtin(&mut self, b: Builtin, args: &[i64], site: Option<u32>) -> Result<i64, VmError> {
        *self.profile.builtin_calls.entry(b).or_insert(0) += 1;
        match b {
            Builtin::Malloc => self.allocate(args[0], site),
            Builtin::Calloc => self.allocate(args[0].saturating_mul(args[1]), site),
            Builtin::Realloc => {
                let old = args[0] as u64;
                let new_size = args[1];
                if old == 0 {
                    return self.allocate(new_size, site);
                }
                let old_extent = self.heap.extent(old).map(|(_, s)| s).unwrap_or(0);
                let new = self.allocate(new_size, site)? as u64;
                let n = old_extent.min(new_size.max(0) as u64) as usize;
                self.mem.copy(new, old, n)?;
                // The new object is allocated black mid-cycle but never
                // scanned: the copied-in pointers must be greyed.
                if self.heap.barrier_active() {
                    self.heap.write_barrier_range(&self.mem, new, n as u64);
                }
                Ok(new as i64)
            }
            Builtin::Free => Ok(0), // the collector reclaims
            Builtin::Strlen => {
                let s = self.mem.read_cstr(args[0] as u64)?;
                self.profile.builtin_byte_work += s.len() as u64 + 1;
                Ok(s.len() as i64)
            }
            Builtin::Strcmp => {
                let a = self.mem.read_cstr(args[0] as u64)?;
                let b2 = self.mem.read_cstr(args[1] as u64)?;
                self.profile.builtin_byte_work += (a.len().min(b2.len()) + 1) as u64;
                Ok(cmp_bytes(&a, &b2))
            }
            Builtin::Strncmp => {
                let n = args[2].max(0) as usize;
                let a = self.mem.read_cstr(args[0] as u64)?;
                let b2 = self.mem.read_cstr(args[1] as u64)?;
                let a = &a[..a.len().min(n)];
                let b2 = &b2[..b2.len().min(n)];
                self.profile.builtin_byte_work += (a.len().min(b2.len()) + 1) as u64;
                Ok(cmp_bytes(a, b2))
            }
            Builtin::Strcpy => {
                let src = self.mem.read_cstr(args[1] as u64)?;
                let dst = args[0] as u64;
                self.check_heap_access(dst)?;
                for (i, byte) in src.iter().enumerate() {
                    self.mem.write(dst + i as u64, 1, *byte as u64)?;
                }
                self.mem.write(dst + src.len() as u64, 1, 0)?;
                if self.heap.barrier_active() {
                    self.heap
                        .write_barrier_range(&self.mem, dst, src.len() as u64 + 1);
                }
                self.profile.builtin_byte_work += src.len() as u64 + 1;
                Ok(args[0])
            }
            Builtin::Memcpy => {
                let n = args[2].max(0) as usize;
                self.mem.copy(args[0] as u64, args[1] as u64, n)?;
                if self.heap.barrier_active() {
                    self.heap
                        .write_barrier_range(&self.mem, args[0] as u64, n as u64);
                }
                self.profile.builtin_byte_work += n as u64;
                Ok(args[0])
            }
            Builtin::Memset => {
                let n = args[2].max(0) as usize;
                self.mem.fill(args[0] as u64, args[1] as u8, n)?;
                // No barrier: an 8-byte word of one repeated byte is 0 or
                // ≥ 0x0101…, never inside the heap range, and merely
                // overwriting pointers needs no Dijkstra barrier.
                self.profile.builtin_byte_work += n as u64;
                Ok(args[0])
            }
            Builtin::Memcmp => {
                let n = args[2].max(0) as usize;
                self.profile.builtin_byte_work += n as u64;
                let mut r = 0i64;
                for i in 0..n {
                    let x = self.mem.read(args[0] as u64 + i as u64, 1)? as i64;
                    let y = self.mem.read(args[1] as u64 + i as u64, 1)? as i64;
                    if x != y {
                        r = if x < y { -1 } else { 1 };
                        break;
                    }
                }
                Ok(r)
            }
            Builtin::Getchar => {
                if self.input_pos < self.opts.input.len() {
                    let c = self.opts.input[self.input_pos];
                    self.input_pos += 1;
                    Ok(c as i64)
                } else {
                    Ok(-1)
                }
            }
            Builtin::Putchar => {
                self.output.push(args[0] as u8);
                Ok(args[0])
            }
            Builtin::Putstr => {
                let s = self.mem.read_cstr(args[0] as u64)?;
                self.profile.builtin_byte_work += s.len() as u64;
                self.output.extend_from_slice(&s);
                Ok(0)
            }
            Builtin::Putint => {
                self.output
                    .extend_from_slice(args[0].to_string().as_bytes());
                Ok(0)
            }
            Builtin::Exit => {
                self.exit = Some(args[0]);
                Ok(0)
            }
            Builtin::Abort => Err(VmError::Aborted),
            Builtin::GcCollect => {
                let roots = self.roots();
                self.heap.collect(&mut self.mem, &roots);
                Ok(0)
            }
            Builtin::GcHeapSize => Ok(self.heap.stats().bytes_live as i64),
            Builtin::GcBase => Ok(self.heap.base(args[0] as u64).unwrap_or(0) as i64),
            Builtin::GcSameObj => {
                let v = args[0] as u64;
                let base = args[1] as u64;
                self.exec_same_obj_check(v, base)?;
                Ok(args[0])
            }
            Builtin::KeepLiveFn => Ok(args[0]),
            Builtin::GcPreIncr | Builtin::GcPostIncr => {
                let pp = args[0] as u64;
                let delta = args[1];
                self.check_heap_access(pp)?;
                let old = self.mem.read(pp, 8)? as i64;
                let new = old.wrapping_add(delta);
                if self.mem.in_heap(old as u64) {
                    self.exec_same_obj_check(new as u64, old as u64)?;
                }
                self.mem.write(pp, 8, new as u64)?;
                if self.heap.barrier_active() {
                    self.heap.write_barrier(pp, new as u64);
                }
                Ok(if b == Builtin::GcPreIncr { new } else { old })
            }
        }
    }
}

fn extend(raw: u64, width: u8, signed: bool) -> i64 {
    match (width, signed) {
        (1, true) => raw as u8 as i8 as i64,
        (1, false) => raw as u8 as i64,
        (2, true) => raw as u16 as i16 as i64,
        (2, false) => raw as u16 as i64,
        (4, true) => raw as u32 as i32 as i64,
        (4, false) => raw as u32 as i64,
        _ => raw as i64,
    }
}

fn cmp_bytes(a: &[u8], b: &[u8]) -> i64 {
    match a.cmp(b) {
        std::cmp::Ordering::Less => -1,
        std::cmp::Ordering::Equal => 0,
        std::cmp::Ordering::Greater => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extend_widths() {
        assert_eq!(extend(0xFF, 1, true), -1);
        assert_eq!(extend(0xFF, 1, false), 255);
        assert_eq!(extend(0xFFFF_FFFF, 4, true), -1);
        assert_eq!(extend(0xFFFF_FFFF, 4, false), 0xFFFF_FFFF);
    }

    #[test]
    fn cmp_bytes_ordering() {
        assert_eq!(cmp_bytes(b"abc", b"abd"), -1);
        assert_eq!(cmp_bytes(b"abc", b"abc"), 0);
        assert_eq!(cmp_bytes(b"abd", b"abc"), 1);
        assert_eq!(cmp_bytes(b"ab", b"abc"), -1);
    }
}

#[cfg(test)]
mod vm_behavior_tests {
    use super::*;
    use crate::{compile_and_run, CompileOptions};

    fn run(src: &str, input: &[u8]) -> ExecOutcome {
        let v = VmOptions {
            input: input.to_vec(),
            ..VmOptions::default()
        };
        compile_and_run(src, &CompileOptions::optimized(), &v).expect("runs")
    }

    fn run_err(src: &str) -> VmError {
        compile_and_run(src, &CompileOptions::optimized(), &VmOptions::default())
            .expect_err("must fail")
    }

    #[test]
    fn using_the_result_of_a_valueless_return_is_an_error() {
        // `return;` in a non-void function is accepted by the front end
        // (ANSI C does), but a caller that *uses* the result must not get
        // a silent 0 — that would mask real miscompilations from the
        // differential oracle.
        let src = r#"
            int f(int x) {
                if (x > 0) return;
                return 7;
            }
            int main(void) { return f(1); }
        "#;
        match run_err(src) {
            VmError::MissingReturn { func } => assert_eq!(func, "f"),
            other => panic!("expected MissingReturn, got {other}"),
        }
    }

    #[test]
    fn valueless_return_is_fine_when_the_result_is_unused() {
        let src = r#"
            int f(int x) {
                if (x > 0) return;
                return 7;
            }
            int main(void) { f(1); return 4; }
        "#;
        assert_eq!(run(src, b"").exit_code, 4);
    }

    #[test]
    fn memcpy_memset_memcmp() {
        let src = r#"
            int main(void) {
                char *a = (char *) malloc(32);
                char *b = (char *) malloc(32);
                memset(a, 'x', 10);
                a[10] = 0;
                memcpy(b, a, 11);
                if (memcmp(a, b, 11) != 0) return 1;
                b[3] = 'y';
                if (memcmp(a, b, 11) >= 0) return 2;
                return (int) strlen(b);
            }
        "#;
        assert_eq!(run(src, b"").exit_code, 10);
    }

    #[test]
    fn realloc_preserves_prefix() {
        let src = r#"
            int main(void) {
                long *a = (long *) malloc(2 * sizeof(long));
                a[0] = 11; a[1] = 22;
                a = (long *) realloc(a, 8 * sizeof(long));
                a[7] = 33;
                return (int)(a[0] + a[1] + a[7]);
            }
        "#;
        assert_eq!(run(src, b"").exit_code, 66);
    }

    #[test]
    fn realloc_of_null_is_malloc() {
        let src = r#"
            int main(void) {
                char *p = 0;
                p = (char *) realloc(p, 8);
                p[0] = 5;
                return p[0];
            }
        "#;
        assert_eq!(run(src, b"").exit_code, 5);
    }

    #[test]
    fn free_is_a_no_op_under_the_collector() {
        // "remove all calls to free" — we keep them as no-ops.
        let src = r#"
            int main(void) {
                char *p = (char *) malloc(8);
                p[0] = 9;
                free(p);
                return p[0];  /* still alive: the collector owns lifetime */
            }
        "#;
        assert_eq!(run(src, b"").exit_code, 9);
    }

    #[test]
    fn strcpy_and_strncmp() {
        let src = r#"
            int main(void) {
                char *d = (char *) malloc(16);
                strcpy(d, "hello");
                if (strncmp(d, "help", 3) != 0) return 1;
                if (strncmp(d, "help", 4) == 0) return 2;
                return 0;
            }
        "#;
        assert_eq!(run(src, b"").exit_code, 0);
    }

    #[test]
    fn gc_base_builtin() {
        let src = r#"
            int main(void) {
                char *p = (char *) malloc(100);
                char *interior = p + 57;
                char *base = (char *) GC_base(interior);
                if (base != p) return 1;
                if (GC_base((void *) 1234) != 0) return 2;
                return 0;
            }
        "#;
        assert_eq!(run(src, b"").exit_code, 0);
    }

    #[test]
    fn gc_collect_and_heap_size() {
        let src = r#"
            int main(void) {
                long before;
                long after;
                long i;
                for (i = 0; i < 100; i++) { char *junk = (char *) malloc(64); junk[0] = 1; }
                before = gc_heap_size();
                gc_collect();
                after = gc_heap_size();
                return after < before ? 0 : 1;
            }
        "#;
        assert_eq!(run(src, b"").exit_code, 0);
    }

    #[test]
    fn stack_overflow_detected() {
        let src = "int f(int n) { char big[2048]; big[0] = (char) n; return f(n + 1) + big[0]; }\n\
                   int main(void) { return f(0); }";
        assert_eq!(run_err(src), VmError::StackOverflow);
    }

    #[test]
    fn abort_reported() {
        assert_eq!(
            run_err("int main(void) { abort(); return 0; }"),
            VmError::Aborted
        );
    }

    #[test]
    fn exit_terminates_early_with_code() {
        let src = "int main(void) { putchar('a'); exit(42); putchar('b'); return 0; }";
        let out = run(src, b"");
        assert_eq!(out.exit_code, 42);
        assert_eq!(out.output, b"a");
    }

    #[test]
    fn null_dereference_faults() {
        let src = "int main(void) { char *p = 0; return *p; }";
        assert!(matches!(run_err(src), VmError::Fault(_)));
    }

    #[test]
    fn wild_pointer_write_faults() {
        let src = "int main(void) { long *p = (long *) 0x99999999; *p = 1; return 0; }";
        assert!(matches!(run_err(src), VmError::Fault(_)));
    }

    #[test]
    fn putint_handles_negatives_and_zero() {
        let src = "int main(void) { putint(0); putchar(' '); putint(-12345); return 0; }";
        assert_eq!(run(src, b"").output, b"0 -12345");
    }

    #[test]
    fn profile_reflects_builtin_calls() {
        let src = r#"
            int main(void) {
                long i;
                for (i = 0; i < 10; i++) { char *p = (char *) malloc(8); p[0] = 1; }
                return 0;
            }
        "#;
        let out = run(src, b"");
        assert_eq!(
            out.profile.builtin_calls.get(&Builtin::Malloc).copied(),
            Some(10)
        );
    }

    #[test]
    fn base_store_check_flags_interior_pointers() {
        let src = r#"
            struct h { char *p; };
            int main(void) {
                struct h *x = (struct h *) malloc(sizeof(struct h));
                char *obj = (char *) malloc(64);
                x->p = obj + 8;   /* interior pointer into the heap */
                return 0;
            }
        "#;
        let v = VmOptions {
            check_base_stores: true,
            ..VmOptions::default()
        };
        let r = compile_and_run(src, &CompileOptions::optimized(), &v);
        assert!(matches!(r, Err(VmError::InteriorStored { .. })), "{r:?}");
    }

    #[test]
    fn base_store_check_accepts_bases_and_non_heap() {
        let src = r#"
            struct h { char *p; long n; };
            char *global_slot;
            int main(void) {
                struct h *x = (struct h *) malloc(sizeof(struct h));
                char *obj = (char *) malloc(64);
                x->p = obj;        /* base pointer: fine */
                x->n = 123456;     /* plain integer: fine */
                global_slot = obj; /* base into statics: fine */
                return 0;
            }
        "#;
        let v = VmOptions {
            check_base_stores: true,
            ..VmOptions::default()
        };
        compile_and_run(src, &CompileOptions::optimized(), &v).expect("conforming program");
    }

    #[test]
    fn safe_mode_survives_the_bounded_pause_paranoid_collector() {
        // Pointer-churning list reversal: every `->next` store is a heap
        // pointer store, and with `gc_threshold: 1` under the bounded-pause
        // collector, marking is in flight at essentially every store. The
        // write barrier is what keeps the list intact; `trap_uaf` (on by
        // default) turns any lost node into a hard error.
        let src = r#"
            struct node { struct node *next; long v; };
            int main(void) {
                struct node *head = 0;
                struct node *prev = 0;
                struct node *n;
                struct node *nx;
                long i;
                long sum = 0;
                for (i = 0; i < 200; i++) {
                    n = (struct node *) malloc(sizeof(struct node));
                    n->next = head;
                    n->v = i;
                    head = n;
                }
                while (head) { nx = head->next; head->next = prev; prev = head; head = nx; }
                while (prev) { sum = sum + prev->v; prev = prev->next; }
                putint(sum);
                return 0;
            }
        "#;
        let v = VmOptions {
            heap_config: HeapConfig {
                gc_threshold: 1,
                ..HeapConfig::bounded_pause()
            },
            ..VmOptions::default()
        };
        let out = compile_and_run(src, &CompileOptions::debug(), &v).expect("runs");
        assert_eq!(out.output, b"19900");
        assert!(out.heap.collections_nursery > 0, "{:?}", out.heap);
        assert!(out.heap.collections_increment_finish > 0, "{:?}", out.heap);
    }

    #[test]
    fn varargs_style_indirect_calls_rejected_gracefully() {
        let src = r#"
            int main(void) {
                int (*f)(int, int);
                f = (int (*)(int, int)) 12345; /* not a function pointer */
                return f(1, 2);
            }
        "#;
        assert!(matches!(run_err(src), VmError::Malformed(_)));
    }
}
