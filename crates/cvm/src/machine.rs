//! Machine cost models.
//!
//! The paper measures a Weitek-processor SPARCstation 2 (SunOS 4.1.4), a
//! SPARCstation 10 (Solaris 2.5), and a Pentium 90 (Linux 1.81). We model
//! each as a cycle-cost table over the SPARC-like virtual ISA plus a
//! register budget for the allocator. The models are *not* calibrated to
//! absolute hardware timings — the paper reports only relative slowdowns —
//! but they encode the architectural contrasts the paper's analysis leans
//! on:
//!
//! * SPARCs allow "a free addition in the load instruction" (indexed
//!   loads), which is exactly what a `KEEP_LIVE` barrier forfeits;
//! * the SPARCstation 2 has slower memory accesses than the 10;
//! * the Pentium has "substantially fewer registers", so if safe-mode
//!   overhead were register pressure it would blow up there — the paper
//!   observes it does not.

use cfront::sema::Builtin;

/// A machine cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// Model name as it appears in the paper's tables.
    pub name: &'static str,
    /// General-purpose registers available to the allocator.
    pub regs: usize,
    /// Cycles for a load.
    pub load_cost: u64,
    /// Cycles for a store.
    pub store_cost: u64,
    /// Cycles for a simple ALU op / move.
    pub alu_cost: u64,
    /// Cycles for an integer multiply.
    pub mul_cost: u64,
    /// Cycles for an integer divide.
    pub div_cost: u64,
    /// Call/return overhead in cycles (save/restore, linkage).
    pub call_cost: u64,
    /// Taken-branch cost.
    pub branch_cost: u64,
    /// Cycles for one `GC_same_obj` page-map lookup (call overhead
    /// included) — the checking mode's unit cost.
    pub check_cost: u64,
    /// Per-byte cycle cost of block builtins (memcpy, strlen, …).
    pub byte_work_cost_milli: u64,
    /// Fixed per-builtin-call overhead.
    pub builtin_overhead: u64,
}

impl Machine {
    /// The Weitek SPARCstation 2 model.
    pub fn sparc2() -> Machine {
        Machine {
            name: "SPARCstation 2",
            regs: 16,
            load_cost: 2,
            store_cost: 3,
            alu_cost: 1,
            mul_cost: 5,
            div_cost: 18,
            call_cost: 6,
            branch_cost: 2,
            check_cost: 38,
            byte_work_cost_milli: 1500,
            builtin_overhead: 8,
        }
    }

    /// The SPARCstation 10 model (`-O2` rows).
    pub fn sparc10() -> Machine {
        Machine {
            name: "SPARC 10",
            regs: 16,
            load_cost: 1,
            store_cost: 1,
            alu_cost: 1,
            mul_cost: 4,
            div_cost: 12,
            call_cost: 5,
            branch_cost: 1,
            check_cost: 32,
            byte_work_cost_milli: 800,
            builtin_overhead: 6,
        }
    }

    /// The Pentium 90 model: few registers, cheap memory ops, pricier
    /// divides and calls.
    pub fn pentium90() -> Machine {
        Machine {
            name: "Pentium 90",
            regs: 6,
            load_cost: 1,
            store_cost: 1,
            alu_cost: 1,
            mul_cost: 9,
            div_cost: 25,
            call_cost: 7,
            branch_cost: 2,
            check_cost: 30,
            byte_work_cost_milli: 700,
            builtin_overhead: 6,
        }
    }

    /// All three models in paper order.
    pub fn all() -> Vec<Machine> {
        vec![Machine::sparc2(), Machine::sparc10(), Machine::pentium90()]
    }

    /// Looks a model up by a short key (`sparc2`, `sparc10`, `pentium90`).
    pub fn by_key(key: &str) -> Option<Machine> {
        match key {
            "sparc2" => Some(Machine::sparc2()),
            "sparc10" => Some(Machine::sparc10()),
            "pentium90" => Some(Machine::pentium90()),
            _ => None,
        }
    }

    /// Per-call fixed cost of a builtin beyond its byte work (models the
    /// hand-written library routine's own linkage).
    pub fn builtin_call_cost(&self, b: Builtin) -> u64 {
        use Builtin::*;
        match b {
            // Allocation does size-class lookup and free-list pop.
            Malloc | Calloc | Realloc => self.builtin_overhead + 14 * self.alu_cost,
            Free => self.builtin_overhead,
            // Checking-mode runtime entry points: one page-map lookup each
            // plus the store-back for the increment forms.
            GcSameObj => self.check_cost,
            // The naive KEEP_LIVE: full call linkage for an identity
            // function.
            KeepLiveFn => self.call_cost + self.builtin_overhead,
            GcPreIncr | GcPostIncr => self.check_cost + self.load_cost + self.store_cost,
            GcBase => self.check_cost,
            // I/O and termination.
            Getchar | Putchar => self.builtin_overhead,
            Putstr | Putint => self.builtin_overhead + 4,
            Exit | Abort | GcCollect | GcHeapSize => self.builtin_overhead,
            // Byte-work builtins: fixed part only; variable part is charged
            // via `byte_work_cost_milli`.
            Strlen | Strcmp | Strncmp | Strcpy | Memcpy | Memset | Memcmp => self.builtin_overhead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_key() {
        assert_eq!(Machine::by_key("sparc2").unwrap().name, "SPARCstation 2");
        assert_eq!(Machine::by_key("pentium90").unwrap().regs, 6);
        assert!(Machine::by_key("vax").is_none());
    }

    #[test]
    fn architectural_contrasts_hold() {
        let s2 = Machine::sparc2();
        let s10 = Machine::sparc10();
        let p90 = Machine::pentium90();
        assert!(s2.load_cost > s10.load_cost, "SS2 memory is slower");
        assert!(p90.regs < s10.regs, "Pentium has fewer registers");
        assert!(
            s10.check_cost > 10 * s10.alu_cost,
            "checks dominate arithmetic"
        );
    }

    #[test]
    fn all_returns_paper_order() {
        let names: Vec<&str> = Machine::all().iter().map(|m| m.name).collect();
        assert_eq!(names, vec!["SPARCstation 2", "SPARC 10", "Pentium 90"]);
    }
}
