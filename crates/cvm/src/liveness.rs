//! Backward liveness analysis over IR temps.
//!
//! Liveness is what makes the GC-safety question *real* in this system:
//! the VM's conservative collector scans, per suspended frame, exactly the
//! temps that are live across the active call — dead registers are not
//! roots, just as a real register allocator would have reused them. A
//! disguised pointer whose original register is dead therefore fails to
//! retain its object (the paper's hazard), while a `KeepLive` base operand
//! extends the base's live range to the protection point (the paper's
//! fix).
//!
//! The same analysis drives the peephole postprocessor's "register `z`
//! should have no other uses" safety constraint.

use crate::ir::{FuncIr, Instr, Temp};
use std::collections::HashMap;

/// A dense bitset of temps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TempSet {
    bits: Vec<u64>,
}

impl TempSet {
    /// Creates an empty set sized for `n` temps.
    pub fn new(n: u32) -> Self {
        TempSet {
            bits: vec![0; (n as usize).div_ceil(64)],
        }
    }

    /// Inserts a temp; returns whether it was newly added.
    pub fn insert(&mut self, t: Temp) -> bool {
        let (w, b) = (t.0 as usize / 64, t.0 as usize % 64);
        let was = self.bits[w] & (1 << b) != 0;
        self.bits[w] |= 1 << b;
        !was
    }

    /// Removes a temp.
    pub fn remove(&mut self, t: Temp) {
        let (w, b) = (t.0 as usize / 64, t.0 as usize % 64);
        self.bits[w] &= !(1 << b);
    }

    /// Membership test.
    pub fn contains(&self, t: Temp) -> bool {
        let (w, b) = (t.0 as usize / 64, t.0 as usize % 64);
        self.bits.get(w).map(|x| x & (1 << b) != 0).unwrap_or(false)
    }

    /// Unions `other` into `self`; returns whether anything changed.
    pub fn union_with(&mut self, other: &TempSet) -> bool {
        let mut changed = false;
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            let new = *a | *b;
            if new != *a {
                *a = new;
                changed = true;
            }
        }
        changed
    }

    /// Iterates over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Temp> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &word)| {
            (0..64)
                .filter(move |b| word & (1u64 << b) != 0)
                .map(move |b| Temp((w * 64 + b) as u32))
        })
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }
}

/// Per-function liveness results.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Live-in per block.
    pub live_in: Vec<TempSet>,
    /// Live-out per block.
    pub live_out: Vec<TempSet>,
}

impl Liveness {
    /// Computes liveness for a function.
    pub fn compute(func: &FuncIr) -> Liveness {
        let n = func.temp_count;
        let nb = func.blocks.len();
        let mut live_in = vec![TempSet::new(n); nb];
        let mut live_out = vec![TempSet::new(n); nb];
        // use/def per block.
        let mut gen_sets = vec![TempSet::new(n); nb];
        let mut kill_sets = vec![TempSet::new(n); nb];
        let mut uses = Vec::new();
        for (bi, b) in func.blocks.iter().enumerate() {
            for ins in &b.instrs {
                uses.clear();
                ins.uses(&mut uses);
                for &u in &uses {
                    if !kill_sets[bi].contains(u) {
                        gen_sets[bi].insert(u);
                    }
                }
                if let Some(d) = ins.dst() {
                    kill_sets[bi].insert(d);
                }
            }
        }
        // Iterate to fixpoint.
        let mut changed = true;
        while changed {
            changed = false;
            for bi in (0..nb).rev() {
                let mut out = TempSet::new(n);
                for succ in func.blocks[bi].successors() {
                    out.union_with(&live_in[succ.0 as usize]);
                }
                if live_out[bi] != out {
                    live_out[bi] = out;
                    changed = true;
                }
                // in = gen ∪ (out − kill)
                let mut inn = gen_sets[bi].clone();
                for t in live_out[bi].iter() {
                    if !kill_sets[bi].contains(t) {
                        inn.insert(t);
                    }
                }
                if live_in[bi] != inn {
                    live_in[bi] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Walks block `bi` backwards and reports, for each instruction index,
    /// the set of temps live *after* that instruction.
    pub fn live_after_each(&self, func: &FuncIr, bi: usize) -> Vec<TempSet> {
        let b = &func.blocks[bi];
        let mut out = vec![TempSet::new(func.temp_count); b.instrs.len()];
        let mut cur = self.live_out[bi].clone();
        let mut uses = Vec::new();
        for (i, ins) in b.instrs.iter().enumerate().rev() {
            out[i] = cur.clone();
            if let Some(d) = ins.dst() {
                cur.remove(d);
            }
            uses.clear();
            ins.uses(&mut uses);
            for &u in &uses {
                cur.insert(u);
            }
        }
        out
    }
}

/// For every GC point (a `Call` instruction — collections happen inside
/// allocation, per the paper's call-site model), the temps whose values
/// must be treated as roots while the callee runs: everything live after
/// the call, minus its own result.
pub fn gc_root_maps(func: &FuncIr) -> HashMap<(u32, u32), Vec<Temp>> {
    let lv = Liveness::compute(func);
    let mut maps = HashMap::new();
    for bi in 0..func.blocks.len() {
        let after = lv.live_after_each(func, bi);
        for (ii, ins) in func.blocks[bi].instrs.iter().enumerate() {
            if let Instr::Call { dst, .. } = ins {
                let mut roots: Vec<Temp> = after[ii].iter().collect();
                if let Some(d) = dst {
                    roots.retain(|t| t != d);
                }
                maps.insert((bi as u32, ii as u32), roots);
            }
        }
    }
    maps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::*;

    fn t(n: u32) -> Temp {
        Temp(n)
    }

    /// fn: t0 = 1; t1 = alloc-call(); t2 = t0 + t1; ret t2
    fn sample() -> FuncIr {
        FuncIr {
            name: "f".into(),
            blocks: vec![Block {
                instrs: vec![
                    Instr::Const {
                        dst: t(0),
                        value: 1,
                    },
                    Instr::Call {
                        dst: Some(t(1)),
                        target: CallTarget::Builtin(cfront::Builtin::Malloc),
                        args: vec![Operand::Const(8)],
                        site: None,
                    },
                    Instr::Bin {
                        dst: t(2),
                        op: BinIr::Add,
                        a: t(0).into(),
                        b: t(1).into(),
                    },
                    Instr::Ret {
                        value: Some(t(2).into()),
                    },
                ],
            }],
            temp_count: 3,
            param_temps: vec![],
            frame_size: 0,
            returns_value: true,
        }
    }

    #[test]
    fn live_across_call_is_a_root() {
        let maps = gc_root_maps(&sample());
        let roots = &maps[&(0, 1)];
        assert!(roots.contains(&t(0)), "t0 is live across the allocation");
        assert!(
            !roots.contains(&t(1)),
            "the call's own result is not yet live"
        );
        assert!(!roots.contains(&t(2)), "t2 is not defined yet");
    }

    #[test]
    fn dead_temp_is_not_a_root() {
        // t0 defined but never used after the call: not a root.
        let f = FuncIr {
            name: "g".into(),
            blocks: vec![Block {
                instrs: vec![
                    Instr::Const {
                        dst: t(0),
                        value: 7,
                    },
                    Instr::Call {
                        dst: Some(t(1)),
                        target: CallTarget::Builtin(cfront::Builtin::Malloc),
                        args: vec![t(0).into()],
                        site: None,
                    },
                    Instr::Ret {
                        value: Some(t(1).into()),
                    },
                ],
            }],
            temp_count: 2,
            param_temps: vec![],
            frame_size: 0,
            returns_value: true,
        };
        let maps = gc_root_maps(&f);
        assert!(maps[&(0, 1)].is_empty(), "arg temp dies at the call");
    }

    #[test]
    fn keep_live_base_extends_range() {
        // t0 (base) would be dead after the add without KeepLive; the
        // KeepLive use keeps it live across the intervening call.
        let f = FuncIr {
            name: "h".into(),
            blocks: vec![Block {
                instrs: vec![
                    Instr::Bin {
                        dst: t(1),
                        op: BinIr::Add,
                        a: t(0).into(),
                        b: Operand::Const(4),
                    },
                    Instr::Call {
                        dst: Some(t(2)),
                        target: CallTarget::Builtin(cfront::Builtin::Malloc),
                        args: vec![Operand::Const(8)],
                        site: None,
                    },
                    Instr::KeepLive {
                        dst: t(3),
                        value: t(1).into(),
                        base: Some(t(0).into()),
                    },
                    Instr::Ret {
                        value: Some(t(3).into()),
                    },
                ],
            }],
            temp_count: 4,
            param_temps: vec![t(0)],
            frame_size: 0,
            returns_value: true,
        };
        let maps = gc_root_maps(&f);
        let roots = &maps[&(0, 1)];
        assert!(
            roots.contains(&t(0)),
            "KeepLive base stays live across the call"
        );
        assert!(roots.contains(&t(1)), "the derived value is live too");
    }

    #[test]
    fn loop_liveness_converges() {
        // bb0: t0 = 10; jump bb1
        // bb1: t1 = t0 - 1; br t1 ? bb1 : bb2
        // bb2: ret t0
        let f = FuncIr {
            name: "l".into(),
            blocks: vec![
                Block {
                    instrs: vec![
                        Instr::Const {
                            dst: t(0),
                            value: 10,
                        },
                        Instr::Jump { target: BlockId(1) },
                    ],
                },
                Block {
                    instrs: vec![
                        Instr::Bin {
                            dst: t(1),
                            op: BinIr::Sub,
                            a: t(0).into(),
                            b: Operand::Const(1),
                        },
                        Instr::Branch {
                            cond: t(1).into(),
                            if_true: BlockId(1),
                            if_false: BlockId(2),
                        },
                    ],
                },
                Block {
                    instrs: vec![Instr::Ret {
                        value: Some(t(0).into()),
                    }],
                },
            ],
            temp_count: 2,
            param_temps: vec![],
            frame_size: 0,
            returns_value: true,
        };
        let lv = Liveness::compute(&f);
        assert!(lv.live_in[1].contains(t(0)));
        assert!(lv.live_out[1].contains(t(0)));
        assert!(lv.live_in[2].contains(t(0)));
        assert!(!lv.live_in[0].contains(t(0)));
    }

    #[test]
    fn tempset_ops() {
        let mut s = TempSet::new(130);
        assert!(s.insert(t(0)));
        assert!(s.insert(t(129)));
        assert!(!s.insert(t(0)));
        assert!(s.contains(t(129)));
        assert_eq!(s.len(), 2);
        s.remove(t(0));
        assert!(!s.contains(t(0)));
        let members: Vec<Temp> = s.iter().collect();
        assert_eq!(members, vec![t(129)]);
    }
}
