//! The optimizer.
//!
//! The same passes run for the `-O` baseline and the `-O safe` (annotated)
//! build — the paper's point is that `KEEP_LIVE` does **not** require
//! suppressing optimizations, only preserving values longer. Two of the
//! passes are exactly the kind that "disguise" pointers:
//!
//! * [`reassociate`] rewrites `p + (i - c)` into `(p - c) + i`, creating an
//!   intermediate that may point *outside* the object (the paper's opening
//!   `p[i-1000]` example);
//! * [`schedule_early`] hoists pure arithmetic upward, past calls — so the
//!   out-of-object intermediate can be the only surviving value when a
//!   collection triggers inside an allocation call.
//!
//! With annotations, neither pass is blocked; the `KeepLive` *base* use
//! simply keeps the original pointer live across the call, which is the
//! whole trick.

use crate::ir::*;
use gctrace::{Event, TraceHandle};
use std::collections::HashMap;

/// Optimizer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OptOptions {
    /// Master switch (false = `-g`-style unoptimized code).
    pub enabled: bool,
    /// Run the displacement reassociation pass.
    pub reassociate: bool,
    /// Run the eager scheduler.
    pub schedule: bool,
    /// Run loop-invariant code motion.
    pub licm: bool,
}

impl Default for OptOptions {
    fn default() -> Self {
        OptOptions {
            enabled: true,
            reassociate: true,
            schedule: true,
            licm: true,
        }
    }
}

impl OptOptions {
    /// Full optimization (the `-O` rows).
    pub fn full() -> Self {
        Self::default()
    }

    /// No optimization (the `-g` rows).
    pub fn none() -> Self {
        OptOptions {
            enabled: false,
            reassociate: false,
            schedule: false,
            licm: false,
        }
    }
}

/// Optimizes every function of a program in place.
pub fn optimize(prog: &mut ProgramIr, opts: OptOptions) {
    optimize_traced(prog, opts, &TraceHandle::disabled());
}

/// [`optimize`] with a trace: emits one `("opt", "pass")` event per
/// pointer-disguising pass that fired (reassociation, LICM, eager
/// scheduling) and one `("opt", "function")` summary per function.
pub fn optimize_traced(prog: &mut ProgramIr, opts: OptOptions, trace: &TraceHandle) {
    if !opts.enabled {
        return;
    }
    for f in &mut prog.funcs {
        optimize_func_traced(f, opts, trace);
    }
}

/// Optimizes a single function in place.
pub fn optimize_func(f: &mut FuncIr, opts: OptOptions) {
    optimize_func_traced(f, opts, &TraceHandle::disabled());
}

/// [`optimize_func`] with per-pass rewrite events.
pub fn optimize_func_traced(f: &mut FuncIr, opts: OptOptions, trace: &TraceHandle) {
    let instrs_before = instr_count(f);
    let mut reassoc_fires = 0usize;
    for _ in 0..3 {
        copy_prop(f);
        const_fold(f);
        if opts.reassociate {
            reassoc_fires += reassociate(f);
        }
        cse(f);
        copy_prop(f);
        dce(f);
    }
    let mut licm_hoists = 0usize;
    if opts.licm {
        licm_hoists = licm(f);
        dce(f);
    }
    let mut sched_moves = 0usize;
    if opts.schedule {
        sched_moves = schedule_early(f);
    }
    let pass_event = |pass: &'static str, fires: usize| {
        Event::new("opt", "pass")
            .field("func", f.name.as_str())
            .field("pass", pass)
            .field("fires", fires)
    };
    if reassoc_fires > 0 {
        trace.emit(|| pass_event("reassociate", reassoc_fires));
    }
    if licm_hoists > 0 {
        trace.emit(|| pass_event("licm", licm_hoists));
    }
    if sched_moves > 0 {
        trace.emit(|| pass_event("schedule_early", sched_moves));
    }
    trace.emit(|| {
        Event::new("opt", "function")
            .field("func", f.name.as_str())
            .field("instrs_before", instrs_before)
            .field("instrs_after", instr_count(f))
            .field("reassociations", reassoc_fires)
            .field("licm_hoists", licm_hoists)
            .field("scheduler_moves", sched_moves)
    });
}

fn instr_count(f: &FuncIr) -> usize {
    f.blocks.iter().map(|b| b.instrs.len()).sum()
}

/// Block-local copy and constant propagation.
pub fn copy_prop(f: &mut FuncIr) {
    for b in &mut f.blocks {
        let mut env: HashMap<Temp, Operand> = HashMap::new();
        for ins in &mut b.instrs {
            // Rewrite uses through the environment (one step is enough
            // because the environment is kept transitively resolved).
            rewrite_operands(ins, |o| match o {
                Operand::Temp(t) => env.get(&t).copied().unwrap_or(o),
                c => c,
            });
            // Kill mappings clobbered by this def.
            if let Some(d) = ins.dst() {
                env.remove(&d);
                env.retain(|_, v| v.as_temp() != Some(d));
            }
            // Record new copies.
            match ins {
                Instr::Mov { dst, src } if src.as_temp() != Some(*dst) => {
                    env.insert(*dst, *src);
                }
                Instr::Const { dst, value } => {
                    env.insert(*dst, Operand::Const(*value));
                }
                _ => {}
            }
        }
    }
}

/// Constant folding and algebraic simplification.
pub fn const_fold(f: &mut FuncIr) {
    for b in &mut f.blocks {
        for ins in &mut b.instrs {
            let replacement = match ins {
                Instr::Bin { dst, op, a, b } => match (a.as_const(), b.as_const()) {
                    (Some(x), Some(y)) => Some(Instr::Const {
                        dst: *dst,
                        value: op.eval(x, y),
                    }),
                    (None, Some(0))
                        if matches!(
                            op,
                            BinIr::Add
                                | BinIr::Sub
                                | BinIr::Or
                                | BinIr::Xor
                                | BinIr::Shl
                                | BinIr::Sar
                                | BinIr::Shr
                        ) =>
                    {
                        Some(Instr::Mov { dst: *dst, src: *a })
                    }
                    (Some(0), None) if *op == BinIr::Add => Some(Instr::Mov { dst: *dst, src: *b }),
                    (None, Some(1)) if matches!(op, BinIr::Mul | BinIr::Div | BinIr::DivU) => {
                        Some(Instr::Mov { dst: *dst, src: *a })
                    }
                    (Some(1), None) if *op == BinIr::Mul => Some(Instr::Mov { dst: *dst, src: *b }),
                    (None, Some(0)) if *op == BinIr::Mul => Some(Instr::Const {
                        dst: *dst,
                        value: 0,
                    }),
                    (None, Some(c)) if *op == BinIr::Mul && c.count_ones() == 1 && c > 0 => {
                        // Strength reduction: multiply by power of two.
                        Some(Instr::Bin {
                            dst: *dst,
                            op: BinIr::Shl,
                            a: *a,
                            b: Operand::Const(c.trailing_zeros() as i64),
                        })
                    }
                    _ => None,
                },
                _ => None,
            };
            if let Some(r) = replacement {
                *ins = r;
            }
        }
        // Fold constant branches.
        if let Some(Instr::Branch {
            cond: Operand::Const(c),
            if_true,
            if_false,
        }) = b.instrs.last().cloned()
        {
            let target = if c != 0 { if_true } else { if_false };
            *b.instrs.last_mut().expect("non-empty block") = Instr::Jump { target };
        }
    }
}

/// Displacement reassociation: `t1 = i ± c; t2 = p + t1` becomes
/// `t3 = p ± c; t2 = t3 + i` when `t1` has no other use. The new `t3` may
/// point outside any object — this is the paper's disguising hazard,
/// reproduced as an honest strength-style optimization (it enables LICM
/// and scheduling of the displaced base). Returns the number of
/// displacement rewrites applied.
pub fn reassociate(f: &mut FuncIr) -> usize {
    let uses = count_uses(f);
    let mut next_temp = f.temp_count;
    let mut fires = 0usize;
    for b in &mut f.blocks {
        // dst → (op, i-operand, c) for `dst = i op c` still valid here.
        let mut defs: HashMap<Temp, (BinIr, Operand, i64)> = HashMap::new();
        let mut new_instrs: Vec<Instr> = Vec::with_capacity(b.instrs.len());
        let invalidate = |defs: &mut HashMap<Temp, (BinIr, Operand, i64)>, d: Temp| {
            // A redefinition kills both the entry for d and any entry whose
            // recorded operand would now read a different value.
            defs.remove(&d);
            defs.retain(|_, (_, i_op, _)| i_op.as_temp() != Some(d));
        };
        for ins in b.instrs.drain(..) {
            match ins {
                Instr::Bin {
                    dst,
                    op: op @ (BinIr::Add | BinIr::Sub),
                    a,
                    b: Operand::Const(c),
                } if a.as_temp() != Some(dst) => {
                    invalidate(&mut defs, dst);
                    defs.insert(dst, (op, a, c));
                    new_instrs.push(Instr::Bin {
                        dst,
                        op,
                        a,
                        b: Operand::Const(c),
                    });
                }
                Instr::Bin {
                    dst,
                    op: BinIr::Add,
                    a: Operand::Temp(p),
                    b: Operand::Temp(t1),
                } if t1 != dst
                    && p != dst
                    && defs.contains_key(&t1)
                    && uses.get(&t1).copied().unwrap_or(0) == 1
                    && !defs.contains_key(&p) =>
                {
                    // p + (i ± c)  →  (p ± c) + i
                    let (op1, i_op, c) = defs[&t1];
                    let t3 = Temp(next_temp);
                    next_temp += 1;
                    new_instrs.push(Instr::Bin {
                        dst: t3,
                        op: op1,
                        a: Operand::Temp(p),
                        b: Operand::Const(c),
                    });
                    new_instrs.push(Instr::Bin {
                        dst,
                        op: BinIr::Add,
                        a: Operand::Temp(t3),
                        b: i_op,
                    });
                    invalidate(&mut defs, dst);
                    fires += 1;
                }
                other => {
                    if let Some(d) = other.dst() {
                        invalidate(&mut defs, d);
                    }
                    new_instrs.push(other);
                }
            }
        }
        b.instrs = new_instrs;
    }
    f.temp_count = next_temp;
    // The original displacement adds may now be dead.
    dce(f);
    fires
}

/// Block-local common-subexpression elimination (value numbering over
/// pure ops, plus redundant-load elimination up to the next clobber).
pub fn cse(f: &mut FuncIr) {
    for b in &mut f.blocks {
        let mut avail: HashMap<String, Temp> = HashMap::new();
        let mut loads: HashMap<(Operand, u8, bool), Temp> = HashMap::new();
        for ins in &mut b.instrs {
            // Compute the lookup key first (on the unmodified instruction).
            let key = match ins {
                Instr::Bin { op, a, b, .. } => Some(format!("{op:?}|{a}|{b}|")),
                Instr::FrameAddr { offset, .. } => Some(format!("fp|{offset}|")),
                _ => None,
            };
            let hit = key.as_ref().and_then(|k| avail.get(k).copied());
            let load_key = match ins {
                Instr::Load {
                    addr,
                    width,
                    signed,
                    ..
                } => Some((*addr, *width, *signed)),
                _ => None,
            };
            let load_hit = load_key.and_then(|k| loads.get(&k).copied());
            // Rewrite hits into copies.
            if let (Some(_), Some(prev)) = (&key, hit) {
                let dst = ins.dst().expect("pure ops define");
                *ins = Instr::Mov {
                    dst,
                    src: prev.into(),
                };
            }
            if let (Some(_), Some(prev)) = (load_key, load_hit) {
                let dst = ins.dst().expect("loads define");
                *ins = Instr::Mov {
                    dst,
                    src: prev.into(),
                };
            }
            // Clobbers kill all remembered loads.
            if matches!(
                ins,
                Instr::Store { .. } | Instr::MemCopy { .. } | Instr::Call { .. }
            ) {
                loads.clear();
            }
            // The def invalidates every fact mentioning it…
            if let Some(d) = ins.dst() {
                let dn = format!("|{d}|");
                let dn_first = format!("|{d}|");
                let _ = &dn_first;
                avail.retain(|k, v| *v != d && !k.contains(&dn));
                loads.retain(|(a, _, _), v| *v != d && a.as_temp() != Some(d));
            }
            // …after which fresh facts become available.
            if let (Some(k), None) = (key, hit) {
                if let Some(dst) = ins.dst() {
                    avail.insert(k, dst);
                }
            }
            if let (Some(k), None, Some(dst)) = (load_key, load_hit, ins.dst()) {
                if matches!(ins, Instr::Load { .. }) {
                    loads.insert(k, dst);
                }
            }
        }
    }
}

/// Global dead-code elimination over temps.
pub fn dce(f: &mut FuncIr) {
    loop {
        let uses = count_uses(f);
        let mut changed = false;
        for b in &mut f.blocks {
            let before = b.instrs.len();
            b.instrs.retain(|ins| {
                if ins.has_side_effects() || ins.is_terminator() {
                    return true;
                }
                match ins.dst() {
                    Some(d) => uses.get(&d).copied().unwrap_or(0) > 0,
                    None => true,
                }
            });
            // Drop no-op moves.
            b.instrs.retain(
                |ins| !matches!(ins, Instr::Mov { dst, src } if src.as_temp() == Some(*dst)),
            );
            if b.instrs.len() != before {
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}

/// Eager scheduling: moves pure instructions as early in their block as
/// their operands allow — in particular above calls (conventional latency
/// hiding). `KeepLive` / `CheckSame` are ordering points and never move;
/// loads don't move above stores/calls. Returns the number of
/// instructions moved.
pub fn schedule_early(f: &mut FuncIr) -> usize {
    let mut moves = 0usize;
    for b in &mut f.blocks {
        let n = b.instrs.len();
        if n < 2 {
            continue;
        }
        let mut i = 1;
        while i < n {
            if movable(&b.instrs[i]) {
                // Find the earliest legal slot, honouring true, anti, and
                // output dependences.
                let mut deps = Vec::new();
                b.instrs[i].uses(&mut deps);
                let our_dst = b.instrs[i].dst();
                let mut slot = i;
                while slot > 0 {
                    let prev = &b.instrs[slot - 1];
                    let prev_dst = prev.dst();
                    let true_dep = prev_dst.map(|d| deps.contains(&d)).unwrap_or(false);
                    let mut prev_uses = Vec::new();
                    prev.uses(&mut prev_uses);
                    let anti_dep = our_dst.map(|d| prev_uses.contains(&d)).unwrap_or(false);
                    let output_dep = our_dst.is_some() && prev_dst == our_dst;
                    if true_dep || anti_dep || output_dep || is_ordering_point(prev) {
                        break;
                    }
                    slot -= 1;
                }
                if slot < i {
                    let ins = b.instrs.remove(i);
                    b.instrs.insert(slot, ins);
                    moves += 1;
                }
            }
            i += 1;
        }
    }
    moves
}

fn movable(ins: &Instr) -> bool {
    matches!(
        ins,
        Instr::Bin { .. } | Instr::Const { .. } | Instr::FrameAddr { .. } | Instr::Mov { .. }
    )
}

fn is_ordering_point(ins: &Instr) -> bool {
    // KeepLive/CheckSame pin the schedule (the paper's "explicit program
    // point"); terminators end blocks.
    matches!(ins, Instr::KeepLive { .. } | Instr::CheckSame { .. }) || ins.is_terminator()
}

fn count_uses(f: &FuncIr) -> HashMap<Temp, usize> {
    let mut uses: HashMap<Temp, usize> = HashMap::new();
    let mut buf = Vec::new();
    for b in &f.blocks {
        for ins in &b.instrs {
            buf.clear();
            ins.uses(&mut buf);
            for &t in &buf {
                *uses.entry(t).or_insert(0) += 1;
            }
        }
    }
    uses
}

fn rewrite_operands(ins: &mut Instr, f: impl Fn(Operand) -> Operand) {
    match ins {
        Instr::Mov { src, .. } => *src = f(*src),
        Instr::Bin { a, b, .. } => {
            *a = f(*a);
            *b = f(*b);
        }
        Instr::Load { addr, .. } => *addr = f(*addr),
        Instr::Store { addr, value, .. } => {
            *addr = f(*addr);
            *value = f(*value);
        }
        Instr::MemCopy {
            dst_addr, src_addr, ..
        } => {
            *dst_addr = f(*dst_addr);
            *src_addr = f(*src_addr);
        }
        Instr::Call { target, args, .. } => {
            if let CallTarget::Indirect(o) = target {
                *o = f(*o);
            }
            for a in args {
                *a = f(*a);
            }
        }
        Instr::KeepLive { value, base, .. } => {
            *value = f(*value);
            if let Some(b) = base {
                *b = f(*b);
            }
        }
        Instr::CheckSame { value, base, .. } => {
            *value = f(*value);
            *base = f(*base);
        }
        Instr::Ret { value: Some(v) } => *v = f(*v),
        Instr::Branch { cond, .. } => *cond = f(*cond),
        Instr::Const { .. }
        | Instr::FrameAddr { .. }
        | Instr::Ret { value: None }
        | Instr::Jump { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32) -> Temp {
        Temp(n)
    }

    fn func(instrs: Vec<Instr>, temp_count: u32) -> FuncIr {
        FuncIr {
            name: "test".into(),
            blocks: vec![Block { instrs }],
            temp_count,
            param_temps: vec![],
            frame_size: 0,
            returns_value: true,
        }
    }

    #[test]
    fn const_fold_arithmetic() {
        let mut f = func(
            vec![
                Instr::Const {
                    dst: t(0),
                    value: 6,
                },
                Instr::Const {
                    dst: t(1),
                    value: 7,
                },
                Instr::Bin {
                    dst: t(2),
                    op: BinIr::Mul,
                    a: t(0).into(),
                    b: t(1).into(),
                },
                Instr::Ret {
                    value: Some(t(2).into()),
                },
            ],
            3,
        );
        copy_prop(&mut f);
        const_fold(&mut f);
        copy_prop(&mut f);
        dce(&mut f);
        assert_eq!(
            f.blocks[0].instrs,
            vec![Instr::Ret {
                value: Some(Operand::Const(42))
            }]
        );
    }

    #[test]
    fn mul_by_power_of_two_becomes_shift() {
        let mut f = func(
            vec![
                Instr::Bin {
                    dst: t(1),
                    op: BinIr::Mul,
                    a: t(0).into(),
                    b: Operand::Const(8),
                },
                Instr::Ret {
                    value: Some(t(1).into()),
                },
            ],
            2,
        );
        const_fold(&mut f);
        assert!(matches!(
            f.blocks[0].instrs[0],
            Instr::Bin {
                op: BinIr::Shl,
                b: Operand::Const(3),
                ..
            }
        ));
    }

    #[test]
    fn cse_merges_repeated_address_computation() {
        let mut f = func(
            vec![
                Instr::Bin {
                    dst: t(1),
                    op: BinIr::Add,
                    a: t(0).into(),
                    b: Operand::Const(8),
                },
                Instr::Bin {
                    dst: t(2),
                    op: BinIr::Add,
                    a: t(0).into(),
                    b: Operand::Const(8),
                },
                Instr::Bin {
                    dst: t(3),
                    op: BinIr::Add,
                    a: t(1).into(),
                    b: t(2).into(),
                },
                Instr::Ret {
                    value: Some(t(3).into()),
                },
            ],
            4,
        );
        cse(&mut f);
        copy_prop(&mut f);
        dce(&mut f);
        let adds = f.blocks[0]
            .instrs
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Instr::Bin {
                        op: BinIr::Add,
                        b: Operand::Const(8),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(adds, 1, "duplicate add folded: {:?}", f.blocks[0].instrs);
    }

    #[test]
    fn redundant_load_removed_until_store() {
        let mut f = func(
            vec![
                Instr::Load {
                    dst: t(1),
                    addr: t(0).into(),
                    width: 8,
                    signed: false,
                },
                Instr::Load {
                    dst: t(2),
                    addr: t(0).into(),
                    width: 8,
                    signed: false,
                },
                Instr::Store {
                    addr: t(0).into(),
                    value: Operand::Const(1),
                    width: 8,
                },
                Instr::Load {
                    dst: t(3),
                    addr: t(0).into(),
                    width: 8,
                    signed: false,
                },
                Instr::Bin {
                    dst: t(4),
                    op: BinIr::Add,
                    a: t(1).into(),
                    b: t(2).into(),
                },
                Instr::Bin {
                    dst: t(5),
                    op: BinIr::Add,
                    a: t(4).into(),
                    b: t(3).into(),
                },
                Instr::Ret {
                    value: Some(t(5).into()),
                },
            ],
            6,
        );
        cse(&mut f);
        let load_count = f.blocks[0]
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Load { .. }))
            .count();
        assert_eq!(load_count, 2, "second load folded, post-store load kept");
    }

    #[test]
    fn dce_removes_dead_but_keeps_side_effects() {
        let mut f = func(
            vec![
                Instr::Const {
                    dst: t(0),
                    value: 1,
                },
                Instr::Const {
                    dst: t(1),
                    value: 2,
                },
                Instr::Store {
                    addr: Operand::Const(0x10000),
                    value: t(1).into(),
                    width: 8,
                },
                Instr::Ret { value: None },
            ],
            2,
        );
        dce(&mut f);
        assert_eq!(
            f.blocks[0].instrs.len(),
            3,
            "dead const removed, store kept"
        );
    }

    #[test]
    fn dead_keep_live_is_removable() {
        let mut f = func(
            vec![
                Instr::KeepLive {
                    dst: t(1),
                    value: t(0).into(),
                    base: None,
                },
                Instr::Ret { value: None },
            ],
            2,
        );
        dce(&mut f);
        assert_eq!(f.blocks[0].instrs.len(), 1);
    }

    #[test]
    fn reassociate_creates_displaced_base() {
        // t1 = i - 1000 ; t2 = p + t1  →  t3 = p - 1000 ; t2 = t3 + i
        let mut f = func(
            vec![
                Instr::Bin {
                    dst: t(2),
                    op: BinIr::Sub,
                    a: t(1).into(),
                    b: Operand::Const(1000),
                },
                Instr::Bin {
                    dst: t(3),
                    op: BinIr::Add,
                    a: t(0).into(),
                    b: t(2).into(),
                },
                Instr::Ret {
                    value: Some(t(3).into()),
                },
            ],
            4,
        );
        reassociate(&mut f);
        let dump = f.dump();
        assert!(
            dump.contains("Sub(t0, 1000)"),
            "displaced base created:\n{dump}"
        );
    }

    #[test]
    fn schedule_hoists_arithmetic_above_calls() {
        let mut f = func(
            vec![
                Instr::Bin {
                    dst: t(1),
                    op: BinIr::Sub,
                    a: t(0).into(),
                    b: Operand::Const(4),
                },
                Instr::Call {
                    dst: Some(t(2)),
                    target: CallTarget::Builtin(cfront::Builtin::Malloc),
                    args: vec![Operand::Const(8)],
                    site: None,
                },
                Instr::Bin {
                    dst: t(3),
                    op: BinIr::Add,
                    a: t(1).into(),
                    b: Operand::Const(1),
                },
                Instr::Ret {
                    value: Some(t(3).into()),
                },
            ],
            4,
        );
        schedule_early(&mut f);
        // The add depending only on t1 moves above the call.
        assert!(matches!(
            f.blocks[0].instrs[1],
            Instr::Bin { op: BinIr::Add, .. }
        ));
        assert!(matches!(f.blocks[0].instrs[2], Instr::Call { .. }));
    }

    #[test]
    fn schedule_respects_keep_live_ordering() {
        let mut f = func(
            vec![
                Instr::KeepLive {
                    dst: t(1),
                    value: t(0).into(),
                    base: Some(t(0).into()),
                },
                Instr::Call {
                    dst: Some(t(2)),
                    target: CallTarget::Builtin(cfront::Builtin::Malloc),
                    args: vec![Operand::Const(8)],
                    site: None,
                },
                Instr::Bin {
                    dst: t(3),
                    op: BinIr::Add,
                    a: t(1).into(),
                    b: Operand::Const(1),
                },
                Instr::Ret {
                    value: Some(t(3).into()),
                },
            ],
            4,
        );
        schedule_early(&mut f);
        // t3's add uses t1 (the keep_live result): it may hoist above the
        // call but never above the keep_live.
        let kl_pos = f.blocks[0]
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::KeepLive { .. }))
            .expect("keep_live kept");
        let add_pos = f.blocks[0]
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::Bin { op: BinIr::Add, .. }))
            .expect("add kept");
        assert!(add_pos > kl_pos);
    }

    #[test]
    fn copy_prop_through_chain() {
        let mut f = func(
            vec![
                Instr::Const {
                    dst: t(0),
                    value: 5,
                },
                Instr::Mov {
                    dst: t(1),
                    src: t(0).into(),
                },
                Instr::Mov {
                    dst: t(2),
                    src: t(1).into(),
                },
                Instr::Ret {
                    value: Some(t(2).into()),
                },
            ],
            3,
        );
        copy_prop(&mut f);
        dce(&mut f);
        assert_eq!(
            f.blocks[0].instrs,
            vec![Instr::Ret {
                value: Some(Operand::Const(5))
            }]
        );
    }

    #[test]
    fn optimizer_never_folds_through_keep_live() {
        // t1 = keeplive(7); t2 = t1 + 1 — t2 must not become Const(8).
        let mut f = func(
            vec![
                Instr::KeepLive {
                    dst: t(1),
                    value: Operand::Const(7),
                    base: None,
                },
                Instr::Bin {
                    dst: t(2),
                    op: BinIr::Add,
                    a: t(1).into(),
                    b: Operand::Const(1),
                },
                Instr::Ret {
                    value: Some(t(2).into()),
                },
            ],
            3,
        );
        optimize_func(&mut f, OptOptions::full());
        let dump = f.dump();
        assert!(dump.contains("keep_live"), "keep_live survives: {dump}");
        assert!(
            !dump.contains("ret 8"),
            "no folding through the barrier: {dump}"
        );
    }
}

/// Loop-invariant code motion.
///
/// The paper's opening hazard is precisely a loop optimization: hoisting
/// the displaced base `p - 1000` out of a loop that evaluates `p[i-1000]`
/// leaves only the out-of-object pointer live inside the loop. This pass
/// performs that hoisting honestly: natural loops are found via back
/// edges (our structured lowering emits headers before bodies), a
/// preheader is inserted, and pure single-def instructions whose operands
/// are loop-invariant move to it. `KeepLive`/`CheckSame` are ordering
/// points and never move — but they don't need to: their *base* operand
/// keeps the object visible wherever the arithmetic lands.
///
/// Returns the number of instructions hoisted to preheaders.
pub fn licm(f: &mut FuncIr) -> usize {
    // True back edges only: u→v with v dominating u (switch lowering also
    // produces harmless backward-numbered forward edges).
    let dom = dominators(f);
    let mut back_edges: Vec<(usize, usize)> = Vec::new(); // (latch, header)
    for (bi, b) in f.blocks.iter().enumerate() {
        for s in b.successors() {
            let h = s.0 as usize;
            if dom[bi].contains(&h) {
                back_edges.push((bi, h));
            }
        }
    }
    back_edges.sort();
    back_edges.dedup();
    let mut hoisted = 0usize;
    for (latch, header) in back_edges {
        if header == 0 {
            continue; // entry block cannot take a preheader safely
        }
        hoisted += hoist_loop(f, latch, header);
    }
    hoisted
}

/// Dominator sets per block (iterative dataflow; CFGs here are tiny).
fn dominators(f: &FuncIr) -> Vec<std::collections::HashSet<usize>> {
    use std::collections::HashSet;
    let n = f.blocks.len();
    let all: HashSet<usize> = (0..n).collect();
    let mut dom: Vec<HashSet<usize>> = vec![all; n];
    dom[0] = HashSet::from([0]);
    let preds: Vec<Vec<usize>> = (0..n).map(|b| crate::opt::preds(f, b)).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for b in 1..n {
            let mut new: Option<HashSet<usize>> = None;
            for &p in &preds[b] {
                new = Some(match new {
                    None => dom[p].clone(),
                    Some(acc) => acc.intersection(&dom[p]).copied().collect(),
                });
            }
            let mut new = new.unwrap_or_default();
            new.insert(b);
            if new != dom[b] {
                dom[b] = new;
                changed = true;
            }
        }
    }
    dom
}

fn preds(f: &FuncIr, target: usize) -> Vec<usize> {
    (0..f.blocks.len())
        .filter(|&bi| {
            f.blocks[bi]
                .successors()
                .iter()
                .any(|s| s.0 as usize == target)
        })
        .collect()
}

/// Natural loop of the back edge latch→header: header plus every block
/// that reaches the latch without passing through the header.
fn loop_blocks(f: &FuncIr, latch: usize, header: usize) -> Vec<usize> {
    let mut in_loop = vec![false; f.blocks.len()];
    in_loop[header] = true;
    let mut work = vec![latch];
    while let Some(b) = work.pop() {
        if in_loop[b] {
            continue;
        }
        in_loop[b] = true;
        for p in preds(f, b) {
            work.push(p);
        }
    }
    (0..f.blocks.len()).filter(|&b| in_loop[b]).collect()
}

fn hoist_loop(f: &mut FuncIr, latch: usize, header: usize) -> usize {
    use crate::liveness::Liveness;
    let blocks = loop_blocks(f, latch, header);
    let in_loop = |b: usize| blocks.contains(&b);
    // Definition counts inside the loop.
    let mut defs_in_loop: HashMap<Temp, usize> = HashMap::new();
    for &bi in &blocks {
        for ins in &f.blocks[bi].instrs {
            if let Some(d) = ins.dst() {
                *defs_in_loop.entry(d).or_insert(0) += 1;
            }
        }
    }
    let lv = Liveness::compute(f);
    // Collect hoistable instructions to a fixpoint.
    let mut invariant: std::collections::HashSet<Temp> = std::collections::HashSet::new();
    let mut to_hoist: Vec<(usize, usize)> = Vec::new(); // (block, instr idx)
    let mut changed = true;
    while changed {
        changed = false;
        for &bi in &blocks {
            for (ii, ins) in f.blocks[bi].instrs.iter().enumerate() {
                if to_hoist.contains(&(bi, ii)) {
                    continue;
                }
                let pure = matches!(
                    ins,
                    Instr::Bin { .. } | Instr::Const { .. } | Instr::FrameAddr { .. }
                );
                if !pure {
                    continue;
                }
                let Some(d) = ins.dst() else { continue };
                if defs_in_loop.get(&d).copied().unwrap_or(0) != 1 {
                    continue;
                }
                // The def must be fresh inside the loop (not carried in).
                if lv.live_in[header].contains(d) {
                    continue;
                }
                let mut ops = Vec::new();
                ins.uses(&mut ops);
                let invariant_ops = ops.iter().all(|t| {
                    invariant.contains(t) || defs_in_loop.get(t).copied().unwrap_or(0) == 0
                });
                if invariant_ops {
                    to_hoist.push((bi, ii));
                    invariant.insert(d);
                    changed = true;
                }
            }
        }
    }
    if to_hoist.is_empty() {
        return 0;
    }
    // Build the preheader with the hoisted instructions in dependency
    // order (original program order across blocks is sufficient because
    // operands are invariant).
    to_hoist.sort();
    let mut pre_instrs: Vec<Instr> = Vec::new();
    // Remove from the back so indices stay valid.
    for &(bi, ii) in to_hoist.iter().rev() {
        let ins = f.blocks[bi].instrs.remove(ii);
        pre_instrs.push(ins);
    }
    pre_instrs.reverse();
    let pre_id = BlockId(f.blocks.len() as u32);
    pre_instrs.push(Instr::Jump {
        target: BlockId(header as u32),
    });
    f.blocks.push(Block { instrs: pre_instrs });
    // Redirect non-loop predecessors of the header to the preheader.
    for bi in 0..f.blocks.len() - 1 {
        if in_loop(bi) {
            continue;
        }
        let block = &mut f.blocks[bi];
        if let Some(last) = block.instrs.last_mut() {
            match last {
                Instr::Jump { target } if target.0 as usize == header => *target = pre_id,
                Instr::Branch {
                    if_true, if_false, ..
                } => {
                    if if_true.0 as usize == header {
                        *if_true = pre_id;
                    }
                    if if_false.0 as usize == header {
                        *if_false = pre_id;
                    }
                }
                _ => {}
            }
        }
    }
    to_hoist.len()
}

#[cfg(test)]
mod licm_tests {
    use super::*;

    fn t(n: u32) -> Temp {
        Temp(n)
    }

    /// bb0: t0=100; jump bb1
    /// bb1: t1 = t0 - 7  (invariant); t2 = t2 + t1; br t2 ? bb1 : bb2
    /// bb2: ret t2
    fn loopy() -> FuncIr {
        FuncIr {
            name: "l".into(),
            blocks: vec![
                Block {
                    instrs: vec![
                        Instr::Const {
                            dst: t(0),
                            value: 100,
                        },
                        Instr::Const {
                            dst: t(2),
                            value: 0,
                        },
                        Instr::Jump { target: BlockId(1) },
                    ],
                },
                Block {
                    instrs: vec![
                        Instr::Bin {
                            dst: t(1),
                            op: BinIr::Sub,
                            a: t(0).into(),
                            b: Operand::Const(7),
                        },
                        Instr::Bin {
                            dst: t(2),
                            op: BinIr::Add,
                            a: t(2).into(),
                            b: t(1).into(),
                        },
                        Instr::Bin {
                            dst: t(3),
                            op: BinIr::CmpLt,
                            a: t(2).into(),
                            b: Operand::Const(1000),
                        },
                        Instr::Branch {
                            cond: t(3).into(),
                            if_true: BlockId(1),
                            if_false: BlockId(2),
                        },
                    ],
                },
                Block {
                    instrs: vec![Instr::Ret {
                        value: Some(t(2).into()),
                    }],
                },
            ],
            temp_count: 4,
            param_temps: vec![],
            frame_size: 0,
            returns_value: true,
        }
    }

    #[test]
    fn hoists_invariant_computation() {
        let mut f = loopy();
        licm(&mut f);
        // The Sub moved to a new preheader block.
        assert_eq!(f.blocks.len(), 4, "{}", f.dump());
        let body = &f.blocks[1].instrs;
        assert!(
            !body
                .iter()
                .any(|i| matches!(i, Instr::Bin { op: BinIr::Sub, .. })),
            "sub left the loop:\n{}",
            f.dump()
        );
        let pre = &f.blocks[3].instrs;
        assert!(pre
            .iter()
            .any(|i| matches!(i, Instr::Bin { op: BinIr::Sub, .. })));
        // bb0 now enters through the preheader.
        assert_eq!(f.blocks[0].successors(), vec![BlockId(3)]);
        assert_eq!(f.blocks[3].successors(), vec![BlockId(1)]);
    }

    #[test]
    fn does_not_hoist_variant_computation() {
        let mut f = loopy();
        licm(&mut f);
        // t2 = t2 + t1 stays (t2 is loop-carried).
        let body = &f.blocks[1].instrs;
        assert!(body
            .iter()
            .any(|i| matches!(i, Instr::Bin { op: BinIr::Add, .. })));
    }

    #[test]
    fn keep_live_is_never_hoisted() {
        let mut f = loopy();
        // Insert a keep_live of an invariant value inside the loop.
        f.temp_count = 5;
        f.blocks[1].instrs.insert(
            1,
            Instr::KeepLive {
                dst: t(4),
                value: t(1).into(),
                base: Some(t(0).into()),
            },
        );
        // Make its result used so DCE-style reasoning can't drop it.
        f.blocks[2].instrs.insert(
            0,
            Instr::Bin {
                dst: t(2),
                op: BinIr::Add,
                a: t(2).into(),
                b: t(4).into(),
            },
        );
        licm(&mut f);
        assert!(
            f.blocks[1]
                .instrs
                .iter()
                .any(|i| matches!(i, Instr::KeepLive { .. })),
            "keep_live stays in the loop:\n{}",
            f.dump()
        );
    }
}

#[cfg(test)]
mod allocation_preservation_tests {
    use super::*;
    use crate::{compile, CompileOptions};

    /// The paper's compiler assumption (0): "Every allocation call in the
    /// source results in a corresponding call to an allocation function in
    /// the object code." Our DCE must never elide a malloc whose result is
    /// unused.
    #[test]
    fn unused_allocation_calls_survive_optimization() {
        let src = r#"
            int main(void) {
                malloc(64);
                (void *) malloc(128);
                return 0;
            }
        "#;
        let prog = compile(src, &CompileOptions::optimized()).expect("compiles");
        let main = &prog.funcs[prog.main];
        let allocs = main
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| {
                matches!(
                    i,
                    Instr::Call {
                        target: CallTarget::Builtin(cfront::Builtin::Malloc),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(allocs, 2, "{}", main.dump());
    }
}
