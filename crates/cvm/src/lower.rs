//! Lowering from the (possibly annotated) C AST to the IR.
//!
//! Two regimes mirror the paper's compilation modes:
//!
//! * **optimizable** (the default): scalar locals without their address
//!   taken live in virtual registers; the optimizer then runs over the
//!   result (the `-O` rows of the paper's tables);
//! * **fully debuggable** ([`LowerOptions::all_locals_in_memory`]): every
//!   local has a memory home and every access loads/stores it — "if the
//!   values of all logically visible variables are explicitly stored … at
//!   all program points, then they will also be available for the garbage
//!   collector" (the `-g` rows).

use crate::ir::*;
use cfront::ast::{BinOp, Block as AstBlock, Expr, ExprKind, Program, Stmt, UnOp};
use cfront::sema::{FuncInfo, Resolution, SemaInfo, VarId};
use cfront::types::{Type, TypeTable};
use cfront::Span;
use gcheap::GLOBAL_BASE;
use std::collections::HashMap;
use std::fmt;

/// Lowering options.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct LowerOptions {
    /// `-g` regime: every local variable gets a frame slot and every
    /// access goes through memory.
    pub all_locals_in_memory: bool,
    /// Lower `KEEP_LIVE` as a real call to an opaque identity function —
    /// the paper's strawman implementation ("terribly inefficient") used
    /// for the implementation-strategy ablation.
    pub keep_live_as_call: bool,
}

/// Lowering failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// Explanation.
    pub message: String,
    /// Source location.
    pub span: Span,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LowerError {}

type LResult<T> = Result<T, LowerError>;

/// Lowers a type-checked program to IR.
///
/// # Errors
///
/// Returns [`LowerError`] for constructs outside the supported subset
/// (e.g. struct-valued parameters) or a missing `main`.
pub fn lower(prog: &Program, sema: &SemaInfo, opts: LowerOptions) -> LResult<ProgramIr> {
    let mut cx = ProgCx {
        types: &prog.types,
        sema,
        opts,
        func_indices: HashMap::new(),
        global_offsets: Vec::new(),
        globals_image: Vec::new(),
        string_pool: HashMap::new(),
        alloc_sites: Vec::new(),
    };
    // Function table: definitions only, in order.
    let defs: Vec<&cfront::ast::FuncDef> = prog.definitions().collect();
    for (i, f) in defs.iter().enumerate() {
        cx.func_indices.insert(f.name.clone(), i);
    }
    // Globals layout.
    let mut offset: u64 = 16; // leave a null-guard gap at the region start
    for g in &prog.globals {
        let align = g.ty.align(cx.types).max(1);
        offset = (offset + align - 1) & !(align - 1);
        cx.global_offsets.push(offset);
        let size = g.ty.size(cx.types).ok_or_else(|| LowerError {
            message: format!("global '{}' has incomplete type", g.name),
            span: g.span,
        })?;
        offset += size;
    }
    cx.globals_image = vec![0u8; offset as usize];
    // Global initializers.
    let globals_by_index: Vec<_> = prog.globals.iter().collect();
    for (i, g) in globals_by_index.iter().enumerate() {
        if let Some(init) = &g.init {
            let off = cx.global_offsets[i];
            cx.write_init(init, &g.ty, off)?;
        }
    }
    // Lower each definition.
    let mut funcs = Vec::with_capacity(defs.len());
    for f in &defs {
        let fi = sema.funcs.get(&f.name).ok_or_else(|| LowerError {
            message: format!("no sema info for function '{}'", f.name),
            span: f.span,
        })?;
        let func = FuncCx::new(&mut cx, f, fi).lower()?;
        funcs.push(func);
    }
    let main = cx
        .func_indices
        .get("main")
        .copied()
        .ok_or_else(|| LowerError {
            message: "program has no 'main' function".into(),
            span: Span::point(0),
        })?;
    let globals_size = cx.globals_image.len() as u64;
    Ok(ProgramIr {
        funcs,
        main,
        globals_image: cx.globals_image,
        globals_size,
        alloc_sites: cx.alloc_sites,
    })
}

struct ProgCx<'a> {
    types: &'a TypeTable,
    sema: &'a SemaInfo,
    opts: LowerOptions,
    func_indices: HashMap<String, usize>,
    global_offsets: Vec<u64>,
    globals_image: Vec<u8>,
    string_pool: HashMap<String, u64>,
    alloc_sites: Vec<AllocSite>,
}

impl ProgCx<'_> {
    fn intern_string(&mut self, s: &str) -> u64 {
        if let Some(&addr) = self.string_pool.get(s) {
            return addr;
        }
        // Align to 8 for conservative-scan friendliness.
        while !self.globals_image.len().is_multiple_of(8) {
            self.globals_image.push(0);
        }
        let addr = GLOBAL_BASE + self.globals_image.len() as u64;
        self.globals_image.extend_from_slice(s.as_bytes());
        self.globals_image.push(0);
        self.string_pool.insert(s.to_string(), addr);
        addr
    }

    fn const_value(&mut self, e: &Expr) -> LResult<i64> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok(*v),
            ExprKind::StrLit(s) => Ok(self.intern_string(s) as i64),
            ExprKind::Ident(_) => match self.sema.res.get(&e.id) {
                Some(Resolution::EnumConst(v)) => Ok(*v),
                Some(Resolution::Func(name)) => {
                    let idx = self.func_indices.get(name).ok_or_else(|| LowerError {
                        message: format!("undefined function '{name}'"),
                        span: e.span,
                    })?;
                    Ok(FUNC_PTR_BASE + *idx as i64)
                }
                _ => Err(LowerError {
                    message: "global initializer is not constant".into(),
                    span: e.span,
                }),
            },
            ExprKind::Unary(UnOp::Neg, inner) => Ok(self.const_value(inner)?.wrapping_neg()),
            ExprKind::Unary(UnOp::BitNot, inner) => Ok(!self.const_value(inner)?),
            ExprKind::Unary(UnOp::Not, inner) => Ok((self.const_value(inner)? == 0) as i64),
            ExprKind::Unary(UnOp::Plus, inner) => self.const_value(inner),
            ExprKind::Binary(op, l, r) => {
                let a = self.const_value(l)?;
                let b = self.const_value(r)?;
                let ir = match op {
                    BinOp::Add => BinIr::Add,
                    BinOp::Sub => BinIr::Sub,
                    BinOp::Mul => BinIr::Mul,
                    BinOp::Div => BinIr::Div,
                    BinOp::Rem => BinIr::Rem,
                    BinOp::Shl => BinIr::Shl,
                    BinOp::Shr => BinIr::Sar,
                    BinOp::BitAnd => BinIr::And,
                    BinOp::BitOr => BinIr::Or,
                    BinOp::BitXor => BinIr::Xor,
                    BinOp::Eq => BinIr::CmpEq,
                    BinOp::Ne => BinIr::CmpNe,
                    BinOp::Lt => BinIr::CmpLt,
                    BinOp::Le => BinIr::CmpLe,
                    BinOp::Gt => BinIr::CmpGt,
                    BinOp::Ge => BinIr::CmpGe,
                    BinOp::LogAnd => {
                        return Ok(((a != 0) && (b != 0)) as i64);
                    }
                    BinOp::LogOr => {
                        return Ok(((a != 0) || (b != 0)) as i64);
                    }
                };
                Ok(ir.eval(a, b))
            }
            ExprKind::Cast(_, inner) => self.const_value(inner),
            ExprKind::SizeofType(t) => Ok(t.size(self.types).unwrap_or(0) as i64),
            _ => Err(LowerError {
                message: "global initializer is not constant".into(),
                span: e.span,
            }),
        }
    }

    fn write_bytes(&mut self, off: u64, bytes: &[u8]) {
        let off = off as usize;
        self.globals_image[off..off + bytes.len()].copy_from_slice(bytes);
    }

    fn write_scalar(&mut self, off: u64, value: i64, width: u64) {
        let bytes = value.to_le_bytes();
        let w = width as usize;
        let off = off as usize;
        self.globals_image[off..off + w].copy_from_slice(&bytes[..w]);
    }

    fn write_init(&mut self, init: &cfront::ast::Init, ty: &Type, off: u64) -> LResult<()> {
        use cfront::ast::Init;
        match (init, ty) {
            (Init::Scalar(e), Type::Array(elem, _)) if **elem == Type::Char => {
                // char buf[...] = "literal";
                if let ExprKind::StrLit(s) = &e.kind {
                    let mut bytes = s.as_bytes().to_vec();
                    bytes.push(0);
                    self.write_bytes(off, &bytes);
                    return Ok(());
                }
                Err(LowerError {
                    message: "array initializer must be a string or list".into(),
                    span: e.span,
                })
            }
            (Init::Scalar(e), _) => {
                let v = self.const_value(e)?;
                let width = ty.size(self.types).unwrap_or(8);
                self.write_scalar(off, v, width.min(8));
                Ok(())
            }
            (Init::List(items), Type::Array(elem, _)) => {
                let esize = elem.size(self.types).ok_or_else(|| LowerError {
                    message: "array of incomplete element type".into(),
                    span: Span::point(0),
                })?;
                for (i, item) in items.iter().enumerate() {
                    self.write_init(item, elem, off + i as u64 * esize)?;
                }
                Ok(())
            }
            (Init::List(items), Type::Record(id)) => {
                let rec = self.types.record(*id).clone();
                for (item, field) in items.iter().zip(rec.fields.iter()) {
                    self.write_init(item, &field.ty, off + field.offset)?;
                }
                Ok(())
            }
            (Init::List(items), _) if items.len() == 1 => self.write_init(&items[0], ty, off),
            (Init::List(_), _) => Err(LowerError {
                message: "brace initializer for scalar".into(),
                span: Span::point(0),
            }),
        }
    }
}

/// Where a variable's value lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Home {
    /// Virtual register.
    Reg(Temp),
    /// Frame slot at the given offset.
    Frame(u32),
}

/// An lvalue location.
#[derive(Debug, Clone, Copy)]
enum Place {
    /// Register-homed scalar.
    Reg(Temp),
    /// Memory with access width and signedness.
    Mem {
        addr: Operand,
        width: u8,
        signed: bool,
    },
    /// Aggregate in memory: the value *is* the address.
    Aggregate { addr: Operand, size: u64 },
}

struct FuncCx<'a, 'b> {
    prog: &'a mut ProgCx<'b>,
    func: &'a cfront::ast::FuncDef,
    fi: &'a FuncInfo,
    blocks: Vec<crate::ir::Block>,
    cur: BlockId,
    temp_count: u32,
    frame_size: u32,
    homes: Vec<Home>,
    param_temps: Vec<Temp>,
    /// (break target, continue target) stack.
    loops: Vec<(BlockId, Option<BlockId>)>,
}

impl<'a, 'b> FuncCx<'a, 'b> {
    fn new(prog: &'a mut ProgCx<'b>, func: &'a cfront::ast::FuncDef, fi: &'a FuncInfo) -> Self {
        FuncCx {
            prog,
            func,
            fi,
            blocks: vec![crate::ir::Block::default()],
            cur: BlockId(0),
            temp_count: 0,
            frame_size: 0,
            homes: Vec::new(),
            param_temps: Vec::new(),
            loops: Vec::new(),
        }
    }

    fn err(&self, span: Span, msg: impl Into<String>) -> LowerError {
        LowerError {
            message: msg.into(),
            span,
        }
    }

    fn temp(&mut self) -> Temp {
        let t = Temp(self.temp_count);
        self.temp_count += 1;
        t
    }

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(crate::ir::Block::default());
        id
    }

    fn emit(&mut self, instr: Instr) {
        let b = &mut self.blocks[self.cur.0 as usize];
        // Never emit past a terminator (unreachable code after return/break).
        if b.instrs.last().map(Instr::is_terminator).unwrap_or(false) {
            return;
        }
        b.instrs.push(instr);
    }

    fn switch_to(&mut self, id: BlockId) {
        self.cur = id;
    }

    fn terminated(&self) -> bool {
        self.blocks[self.cur.0 as usize]
            .instrs
            .last()
            .map(Instr::is_terminator)
            .unwrap_or(false)
    }

    fn alloc_frame(&mut self, size: u64, align: u64) -> u32 {
        let align = align.max(1) as u32;
        self.frame_size = (self.frame_size + align - 1) & !(align - 1);
        let off = self.frame_size;
        self.frame_size += size as u32;
        off
    }

    fn access_info(&self, ty: &Type) -> (u8, bool) {
        match ty {
            Type::Char => (1, true),
            Type::Int => (4, true),
            Type::UInt => (4, false),
            _ => (8, false),
        }
    }

    fn is_aggregate(&self, ty: &Type) -> bool {
        matches!(ty, Type::Array(..) | Type::Record(_))
    }

    fn lower(mut self) -> LResult<FuncIr> {
        // Assign homes for all variables up front.
        for v in &self.fi.vars {
            let home = if self.is_aggregate(&v.ty) {
                let size = v.ty.size(self.prog.types).unwrap_or(8);
                let align = v.ty.align(self.prog.types);
                Home::Frame(self.alloc_frame(size, align))
            } else if v.addr_taken || self.prog.opts.all_locals_in_memory {
                let size = v.ty.size(self.prog.types).unwrap_or(8);
                let align = v.ty.align(self.prog.types).max(size);
                Home::Frame(self.alloc_frame(size, align))
            } else {
                let t = self.temp();
                Home::Reg(t)
            };
            self.homes.push(home);
        }
        // Parameters arrive in fresh temps; copy to homes.
        for (i, v) in self.fi.vars.iter().enumerate() {
            if !v.is_param {
                continue;
            }
            if self.is_aggregate(&v.ty) {
                return Err(self.err(
                    self.func.span,
                    "struct/array parameters by value are not supported (pass a pointer)",
                ));
            }
            let pt = self.temp();
            self.param_temps.push(pt);
            match self.homes[i] {
                Home::Reg(t) => self.emit(Instr::Mov {
                    dst: t,
                    src: pt.into(),
                }),
                Home::Frame(off) => {
                    let addr = self.temp();
                    self.emit(Instr::FrameAddr {
                        dst: addr,
                        offset: off,
                    });
                    let (width, _) = self.access_info(&v.ty.decayed());
                    self.emit(Instr::Store {
                        addr: addr.into(),
                        value: pt.into(),
                        width,
                    });
                }
            }
        }
        let body = self.func.body.as_ref().expect("definition has a body");
        self.block_stmts(body)?;
        if !self.terminated() {
            let zero = self.func.ret != Type::Void;
            if zero {
                self.emit(Instr::Ret {
                    value: Some(Operand::Const(0)),
                });
            } else {
                self.emit(Instr::Ret { value: None });
            }
        }
        // Seal all unterminated blocks (unreachable artifacts) with a ret.
        for b in &mut self.blocks {
            if !b.instrs.last().map(Instr::is_terminator).unwrap_or(false) {
                b.instrs.push(Instr::Ret { value: None });
            }
        }
        Ok(FuncIr {
            name: self.func.name.clone(),
            blocks: self.blocks,
            temp_count: self.temp_count,
            param_temps: self.param_temps,
            frame_size: (self.frame_size + 15) & !15,
            returns_value: self.func.ret != Type::Void,
        })
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn block_stmts(&mut self, b: &AstBlock) -> LResult<()> {
        for s in &b.stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> LResult<()> {
        match s {
            Stmt::Expr(e) => {
                // A statement-position call discards its result: lower it
                // with no destination, so a callee that legally returns no
                // value (e.g. `return;` on one path) stays runnable — the
                // VM rejects value-less returns only when a caller uses one.
                if let ExprKind::Call(callee, args) = &e.kind {
                    self.lower_call(e, callee, args, &Type::Void)?;
                } else {
                    self.expr(e)?;
                }
                Ok(())
            }
            Stmt::Decl(decls) => {
                for d in decls {
                    if let Some(init) = &d.init {
                        let Some(Resolution::Local(var)) = self.prog.sema.res.get(&d.id) else {
                            return Err(self.err(d.span, "unresolved declaration"));
                        };
                        let var = *var;
                        let value = self.expr(init)?;
                        self.store_var(var, value, &d.ty.decayed());
                    }
                }
                Ok(())
            }
            Stmt::Block(b) => self.block_stmts(b),
            Stmt::Empty | Stmt::Case(_) | Stmt::Default => Ok(()),
            Stmt::If(cond, then, els) => {
                let then_b = self.new_block();
                let exit_b = self.new_block();
                let else_b = if els.is_some() {
                    self.new_block()
                } else {
                    exit_b
                };
                let c = self.expr(cond)?;
                self.emit(Instr::Branch {
                    cond: c,
                    if_true: then_b,
                    if_false: else_b,
                });
                self.switch_to(then_b);
                self.stmt(then)?;
                self.emit(Instr::Jump { target: exit_b });
                if let Some(els) = els {
                    self.switch_to(else_b);
                    self.stmt(els)?;
                    self.emit(Instr::Jump { target: exit_b });
                }
                self.switch_to(exit_b);
                Ok(())
            }
            Stmt::While(cond, body) => {
                let cond_b = self.new_block();
                let body_b = self.new_block();
                let exit_b = self.new_block();
                self.emit(Instr::Jump { target: cond_b });
                self.switch_to(cond_b);
                let c = self.expr(cond)?;
                self.emit(Instr::Branch {
                    cond: c,
                    if_true: body_b,
                    if_false: exit_b,
                });
                self.switch_to(body_b);
                self.loops.push((exit_b, Some(cond_b)));
                self.stmt(body)?;
                self.loops.pop();
                self.emit(Instr::Jump { target: cond_b });
                self.switch_to(exit_b);
                Ok(())
            }
            Stmt::DoWhile(body, cond) => {
                let body_b = self.new_block();
                let cond_b = self.new_block();
                let exit_b = self.new_block();
                self.emit(Instr::Jump { target: body_b });
                self.switch_to(body_b);
                self.loops.push((exit_b, Some(cond_b)));
                self.stmt(body)?;
                self.loops.pop();
                self.emit(Instr::Jump { target: cond_b });
                self.switch_to(cond_b);
                let c = self.expr(cond)?;
                self.emit(Instr::Branch {
                    cond: c,
                    if_true: body_b,
                    if_false: exit_b,
                });
                self.switch_to(exit_b);
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let cond_b = self.new_block();
                let body_b = self.new_block();
                let step_b = self.new_block();
                let exit_b = self.new_block();
                self.emit(Instr::Jump { target: cond_b });
                self.switch_to(cond_b);
                match cond {
                    Some(c) => {
                        let c = self.expr(c)?;
                        self.emit(Instr::Branch {
                            cond: c,
                            if_true: body_b,
                            if_false: exit_b,
                        });
                    }
                    None => self.emit(Instr::Jump { target: body_b }),
                }
                self.switch_to(body_b);
                self.loops.push((exit_b, Some(step_b)));
                self.stmt(body)?;
                self.loops.pop();
                self.emit(Instr::Jump { target: step_b });
                self.switch_to(step_b);
                if let Some(st) = step {
                    self.expr(st)?;
                }
                self.emit(Instr::Jump { target: cond_b });
                self.switch_to(exit_b);
                Ok(())
            }
            Stmt::Switch(scrutinee, body) => self.lower_switch(scrutinee, body),
            Stmt::Break => {
                let Some((exit_b, _)) = self.loops.last().copied() else {
                    return Err(self.err(Span::point(0), "break outside loop/switch"));
                };
                self.emit(Instr::Jump { target: exit_b });
                Ok(())
            }
            Stmt::Continue => {
                let target = self
                    .loops
                    .iter()
                    .rev()
                    .find_map(|(_, c)| *c)
                    .ok_or_else(|| self.err(Span::point(0), "continue outside loop"))?;
                self.emit(Instr::Jump { target });
                Ok(())
            }
            Stmt::Return(value) => {
                let v = match value {
                    Some(e) => Some(self.expr(e)?),
                    None => None,
                };
                self.emit(Instr::Ret { value: v });
                Ok(())
            }
        }
    }

    fn lower_switch(&mut self, scrutinee: &Expr, body: &Stmt) -> LResult<()> {
        let Stmt::Block(block) = body else {
            return Err(self.err(Span::point(0), "switch body must be a block"));
        };
        let sc = self.expr(scrutinee)?;
        // Pre-create a block per case/default marker.
        let mut case_blocks: Vec<(Option<i64>, BlockId)> = Vec::new();
        for s in &block.stmts {
            match s {
                Stmt::Case(v) => case_blocks.push((Some(*v), self.new_block())),
                Stmt::Default => case_blocks.push((None, self.new_block())),
                _ => {}
            }
        }
        let exit_b = self.new_block();
        // Dispatch chain.
        let mut default_target = exit_b;
        for (val, blk) in &case_blocks {
            match val {
                Some(v) => {
                    let cmp = self.temp();
                    self.emit(Instr::Bin {
                        dst: cmp,
                        op: BinIr::CmpEq,
                        a: sc,
                        b: Operand::Const(*v),
                    });
                    let next = self.new_block();
                    self.emit(Instr::Branch {
                        cond: cmp.into(),
                        if_true: *blk,
                        if_false: next,
                    });
                    self.switch_to(next);
                }
                None => default_target = *blk,
            }
        }
        self.emit(Instr::Jump {
            target: default_target,
        });
        // Body with fallthrough.
        let mut marker_idx = 0;
        self.loops.push((exit_b, None));
        for s in &block.stmts {
            match s {
                Stmt::Case(_) | Stmt::Default => {
                    let blk = case_blocks[marker_idx].1;
                    marker_idx += 1;
                    self.emit(Instr::Jump { target: blk }); // fallthrough
                    self.switch_to(blk);
                }
                other => self.stmt(other)?,
            }
        }
        self.loops.pop();
        self.emit(Instr::Jump { target: exit_b });
        self.switch_to(exit_b);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Variables
    // ------------------------------------------------------------------

    fn var_home(&self, id: VarId) -> Home {
        self.homes[id.0 as usize]
    }

    fn read_var(&mut self, id: VarId) -> Operand {
        let v = &self.fi.vars[id.0 as usize];
        match self.var_home(id) {
            Home::Reg(t) => t.into(),
            Home::Frame(off) => {
                if self.is_aggregate(&v.ty) {
                    let addr = self.temp();
                    self.emit(Instr::FrameAddr {
                        dst: addr,
                        offset: off,
                    });
                    addr.into()
                } else {
                    let addr = self.temp();
                    self.emit(Instr::FrameAddr {
                        dst: addr,
                        offset: off,
                    });
                    let (width, signed) = self.access_info(&v.ty.decayed());
                    let dst = self.temp();
                    self.emit(Instr::Load {
                        dst,
                        addr: addr.into(),
                        width,
                        signed,
                    });
                    dst.into()
                }
            }
        }
    }

    fn store_var(&mut self, id: VarId, value: Operand, ty: &Type) {
        match self.var_home(id) {
            Home::Reg(t) => self.emit(Instr::Mov { dst: t, src: value }),
            Home::Frame(off) => {
                let addr = self.temp();
                self.emit(Instr::FrameAddr {
                    dst: addr,
                    offset: off,
                });
                let (width, _) = self.access_info(ty);
                self.emit(Instr::Store {
                    addr: addr.into(),
                    value,
                    width,
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Places (lvalues)
    // ------------------------------------------------------------------

    fn place(&mut self, e: &Expr) -> LResult<Place> {
        let ty =
            e.ty.clone()
                .ok_or_else(|| self.err(e.span, "untyped expression"))?;
        match &e.kind {
            ExprKind::Ident(name) => match self.prog.sema.res.get(&e.id) {
                Some(Resolution::Local(var)) => {
                    let var = *var;
                    let vinfo = &self.fi.vars[var.0 as usize];
                    if self.is_aggregate(&vinfo.ty) {
                        let Home::Frame(off) = self.var_home(var) else {
                            unreachable!("aggregates are frame-homed")
                        };
                        let addr = self.temp();
                        self.emit(Instr::FrameAddr {
                            dst: addr,
                            offset: off,
                        });
                        let size = vinfo.ty.size(self.prog.types).unwrap_or(0);
                        return Ok(Place::Aggregate {
                            addr: addr.into(),
                            size,
                        });
                    }
                    match self.var_home(var) {
                        Home::Reg(t) => Ok(Place::Reg(t)),
                        Home::Frame(off) => {
                            let addr = self.temp();
                            self.emit(Instr::FrameAddr {
                                dst: addr,
                                offset: off,
                            });
                            let (width, signed) = self.access_info(&vinfo.ty.decayed());
                            Ok(Place::Mem {
                                addr: addr.into(),
                                width,
                                signed,
                            })
                        }
                    }
                }
                Some(Resolution::Global(gi)) => {
                    let addr = Operand::Const((GLOBAL_BASE + self.prog.global_offsets[*gi]) as i64);
                    if self.is_aggregate(&ty) {
                        let size = ty.size(self.prog.types).unwrap_or(0);
                        Ok(Place::Aggregate { addr, size })
                    } else {
                        let (width, signed) = self.access_info(&ty);
                        Ok(Place::Mem {
                            addr,
                            width,
                            signed,
                        })
                    }
                }
                _ => Err(self.err(e.span, format!("'{name}' is not assignable"))),
            },
            ExprKind::Deref(inner) => {
                let addr = self.expr(inner)?;
                if self.is_aggregate(&ty) {
                    let size = ty.size(self.prog.types).unwrap_or(0);
                    Ok(Place::Aggregate { addr, size })
                } else {
                    let (width, signed) = self.access_info(&ty);
                    Ok(Place::Mem {
                        addr,
                        width,
                        signed,
                    })
                }
            }
            ExprKind::Index(arr, idx) => {
                let addr = self.element_addr(arr, idx)?;
                if self.is_aggregate(&ty) {
                    let size = ty.size(self.prog.types).unwrap_or(0);
                    Ok(Place::Aggregate { addr, size })
                } else {
                    let (width, signed) = self.access_info(&ty);
                    Ok(Place::Mem {
                        addr,
                        width,
                        signed,
                    })
                }
            }
            ExprKind::Member { obj, field, arrow } => {
                let (base_addr, rec_ty) = if *arrow {
                    let a = self.expr(obj)?;
                    let t = obj
                        .ty
                        .as_ref()
                        .map(Type::decayed)
                        .and_then(|t| t.pointee().cloned())
                        .ok_or_else(|| self.err(e.span, "arrow on non-pointer"))?;
                    (a, t)
                } else {
                    let p = self.place(obj)?;
                    let addr = match p {
                        Place::Aggregate { addr, .. } => addr,
                        Place::Mem { addr, .. } => addr,
                        Place::Reg(_) => return Err(self.err(e.span, "member of register value")),
                    };
                    let t = obj
                        .ty
                        .clone()
                        .ok_or_else(|| self.err(e.span, "untyped member base"))?;
                    (addr, t)
                };
                let Type::Record(rid) = rec_ty else {
                    return Err(self.err(e.span, "member of non-record"));
                };
                let rec = self.prog.types.record(rid);
                let fld = rec
                    .field(field)
                    .ok_or_else(|| self.err(e.span, format!("no field '{field}'")))?;
                let offset = fld.offset;
                let addr = self.add_offset(base_addr, offset as i64);
                if self.is_aggregate(&ty) {
                    let size = ty.size(self.prog.types).unwrap_or(0);
                    Ok(Place::Aggregate { addr, size })
                } else {
                    let (width, signed) = self.access_info(&ty);
                    Ok(Place::Mem {
                        addr,
                        width,
                        signed,
                    })
                }
            }
            _ => Err(self.err(e.span, "expression is not an lvalue")),
        }
    }

    fn add_offset(&mut self, base: Operand, offset: i64) -> Operand {
        if offset == 0 {
            return base;
        }
        let dst = self.temp();
        self.emit(Instr::Bin {
            dst,
            op: BinIr::Add,
            a: base,
            b: Operand::Const(offset),
        });
        dst.into()
    }

    /// Computes the address of `arr[idx]`, scaling by element size.
    fn element_addr(&mut self, arr: &Expr, idx: &Expr) -> LResult<Operand> {
        let base = self.expr(arr)?;
        let elem_ty = arr
            .ty
            .as_ref()
            .map(Type::decayed)
            .and_then(|t| t.pointee().cloned())
            .ok_or_else(|| self.err(arr.span, "subscript of non-pointer"))?;
        let esize = elem_ty.size(self.prog.types).unwrap_or(1);
        let i = self.expr(idx)?;
        let scaled = self.scale(i, esize as i64);
        let dst = self.temp();
        self.emit(Instr::Bin {
            dst,
            op: BinIr::Add,
            a: base,
            b: scaled,
        });
        Ok(dst.into())
    }

    fn scale(&mut self, v: Operand, by: i64) -> Operand {
        if by == 1 {
            return v;
        }
        if let Operand::Const(c) = v {
            return Operand::Const(c.wrapping_mul(by));
        }
        let dst = self.temp();
        self.emit(Instr::Bin {
            dst,
            op: BinIr::Mul,
            a: v,
            b: Operand::Const(by),
        });
        dst.into()
    }

    fn read_place(&mut self, p: Place) -> Operand {
        match p {
            Place::Reg(t) => t.into(),
            Place::Mem {
                addr,
                width,
                signed,
            } => {
                let dst = self.temp();
                self.emit(Instr::Load {
                    dst,
                    addr,
                    width,
                    signed,
                });
                dst.into()
            }
            Place::Aggregate { addr, .. } => addr,
        }
    }

    fn write_place(&mut self, p: Place, value: Operand) {
        match p {
            Place::Reg(t) => self.emit(Instr::Mov { dst: t, src: value }),
            Place::Mem { addr, width, .. } => self.emit(Instr::Store { addr, value, width }),
            Place::Aggregate { addr, size } => self.emit(Instr::MemCopy {
                dst_addr: addr,
                src_addr: value,
                len: size,
            }),
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn expr(&mut self, e: &Expr) -> LResult<Operand> {
        let ty =
            e.ty.clone()
                .ok_or_else(|| self.err(e.span, "untyped expression"))?;
        match &e.kind {
            ExprKind::IntLit(v) => Ok(Operand::Const(*v)),
            ExprKind::StrLit(s) => Ok(Operand::Const(self.prog.intern_string(s) as i64)),
            ExprKind::Ident(_) => match self.prog.sema.res.get(&e.id).cloned() {
                Some(Resolution::Local(var)) => {
                    let vinfo = &self.fi.vars[var.0 as usize];
                    if self.is_aggregate(&vinfo.ty) {
                        let p = self.place(e)?;
                        Ok(self.read_place(p))
                    } else {
                        Ok(self.read_var(var))
                    }
                }
                Some(Resolution::Global(_)) => {
                    let p = self.place(e)?;
                    Ok(self.read_place(p))
                }
                Some(Resolution::EnumConst(v)) => Ok(Operand::Const(v)),
                Some(Resolution::Func(name)) => {
                    let idx =
                        self.prog.func_indices.get(&name).ok_or_else(|| {
                            self.err(e.span, format!("undefined function '{name}'"))
                        })?;
                    Ok(Operand::Const(FUNC_PTR_BASE + *idx as i64))
                }
                Some(Resolution::Builtin(_)) => {
                    Err(self.err(e.span, "builtin functions cannot be taken as values"))
                }
                None => Err(self.err(e.span, "unresolved identifier")),
            },
            ExprKind::Unary(op, inner) => {
                let v = self.expr(inner)?;
                let dst = self.temp();
                match op {
                    UnOp::Neg => self.emit(Instr::Bin {
                        dst,
                        op: BinIr::Sub,
                        a: Operand::Const(0),
                        b: v,
                    }),
                    UnOp::Not => self.emit(Instr::Bin {
                        dst,
                        op: BinIr::CmpEq,
                        a: v,
                        b: Operand::Const(0),
                    }),
                    UnOp::BitNot => self.emit(Instr::Bin {
                        dst,
                        op: BinIr::Xor,
                        a: v,
                        b: Operand::Const(-1),
                    }),
                    UnOp::Plus => return Ok(v),
                }
                Ok(dst.into())
            }
            ExprKind::Deref(_) | ExprKind::Index(..) | ExprKind::Member { .. } => {
                let p = self.place(e)?;
                Ok(self.read_place(p))
            }
            ExprKind::AddrOf(inner) => {
                let p = self.place(inner)?;
                match p {
                    Place::Mem { addr, .. } | Place::Aggregate { addr, .. } => Ok(addr),
                    Place::Reg(_) => Err(self.err(
                        e.span,
                        "address of register variable (sema should have homed it)",
                    )),
                }
            }
            ExprKind::Binary(op, l, r) => self.binary(e, *op, l, r, &ty),
            ExprKind::Assign { op, lhs, rhs } => {
                let lhs_ty = lhs
                    .ty
                    .clone()
                    .ok_or_else(|| self.err(lhs.span, "untyped lhs"))?;
                match op {
                    None => {
                        let v = self.expr(rhs)?;
                        let p = self.place(lhs)?;
                        self.write_place(p, v);
                        Ok(v)
                    }
                    Some(op) => {
                        // Compound: evaluate the address once.
                        let p = self.place(lhs)?;
                        let old = self.read_place(p);
                        let v = self.expr(rhs)?;
                        let new = self.apply_binop(*op, old, v, &lhs_ty.decayed(), rhs)?;
                        self.write_place(p, new);
                        Ok(new)
                    }
                }
            }
            ExprKind::IncDec { inc, pre, target } => {
                let new_op = self.lower_incdec(*inc, target, None)?;
                Ok(if *pre { new_op.0 } else { new_op.1 })
            }
            ExprKind::Cond(c, t, f) => {
                let then_b = self.new_block();
                let else_b = self.new_block();
                let join_b = self.new_block();
                let result = self.temp();
                let cv = self.expr(c)?;
                self.emit(Instr::Branch {
                    cond: cv,
                    if_true: then_b,
                    if_false: else_b,
                });
                self.switch_to(then_b);
                let tv = self.expr(t)?;
                self.emit(Instr::Mov {
                    dst: result,
                    src: tv,
                });
                self.emit(Instr::Jump { target: join_b });
                self.switch_to(else_b);
                let fv = self.expr(f)?;
                self.emit(Instr::Mov {
                    dst: result,
                    src: fv,
                });
                self.emit(Instr::Jump { target: join_b });
                self.switch_to(join_b);
                Ok(result.into())
            }
            ExprKind::Comma(l, r) => {
                self.expr(l)?;
                self.expr(r)
            }
            ExprKind::Call(callee, args) => self.lower_call(e, callee, args, &ty),
            ExprKind::Cast(to, inner) => {
                let v = self.expr(inner)?;
                Ok(self.truncate_to(v, to))
            }
            ExprKind::SizeofType(t) => {
                let size = t
                    .size(self.prog.types)
                    .ok_or_else(|| self.err(e.span, "sizeof incomplete type"))?;
                Ok(Operand::Const(size as i64))
            }
            ExprKind::SizeofExpr(inner) => {
                let t = inner
                    .ty
                    .as_ref()
                    .ok_or_else(|| self.err(e.span, "untyped sizeof operand"))?;
                let size = t
                    .size(self.prog.types)
                    .ok_or_else(|| self.err(e.span, "sizeof incomplete type"))?;
                Ok(Operand::Const(size as i64))
            }
            ExprKind::KeepLive { value, base } => {
                self.lower_protected(value, base.as_deref(), false)
            }
            ExprKind::CheckSame { value, base } => self.lower_protected(value, Some(base), true),
        }
    }

    /// Lowers `KEEP_LIVE(value, base)` / `GC_same_obj(value, base)`.
    ///
    /// When `value` is a pointer `++`/`--`, uses the paper's specialized
    /// expansion: `(tmp = p, p = KEEP_LIVE(tmp ± n, tmp-or-base), result)`,
    /// which avoids forcing `p` into memory.
    fn lower_protected(
        &mut self,
        value: &Expr,
        base: Option<&Expr>,
        checked: bool,
    ) -> LResult<Operand> {
        if let ExprKind::IncDec { inc, pre, target } = &value.kind {
            let base_op = match base {
                Some(b) => Some(self.expr(b)?),
                None => None,
            };
            let (new, old) = self.lower_incdec(*inc, target, Some((base_op, checked)))?;
            return Ok(if *pre { new } else { old });
        }
        // No named base: the annotator protected arithmetic whose source is
        // a generating expression. Bind the evaluated pointer operand as
        // the base — the role the paper's introduced temporary plays.
        if base.is_none() {
            if let Some((addr, auto_base)) = self.lower_value_with_base(value)? {
                let dst = self.temp();
                self.emit(Instr::KeepLive {
                    dst,
                    value: addr,
                    base: Some(auto_base),
                });
                return Ok(dst.into());
            }
        }
        let v = self.expr(value)?;
        let b = match base {
            Some(b) => Some(self.expr(b)?),
            None => None,
        };
        let dst = self.temp();
        match (checked, b) {
            (true, Some(b)) => self.emit(Instr::CheckSame {
                dst,
                value: v,
                base: b,
            }),
            (false, b) if self.prog.opts.keep_live_as_call => {
                self.emit(Instr::Call {
                    dst: Some(dst),
                    target: CallTarget::Builtin(cfront::sema::Builtin::KeepLiveFn),
                    args: vec![v, b.unwrap_or(Operand::Const(0))],
                    site: None,
                });
            }
            (true, None) | (false, None) => self.emit(Instr::KeepLive {
                dst,
                value: v,
                base: None,
            }),
            (false, Some(b)) => self.emit(Instr::KeepLive {
                dst,
                value: v,
                base: Some(b),
            }),
        }
        Ok(dst.into())
    }

    /// Lowers a protected value expression while capturing the pointer
    /// operand it derives from, for auto-base binding. Handles the shapes
    /// the annotator produces: `&a[i]`, `&(e->f)`, `&((*e).f)`, and plain
    /// pointer ± integer arithmetic. Returns `None` for other shapes.
    fn lower_value_with_base(&mut self, e: &Expr) -> LResult<Option<(Operand, Operand)>> {
        match &e.kind {
            ExprKind::AddrOf(inner) => match &inner.kind {
                ExprKind::Index(arr, idx) => {
                    let base = self.expr(arr)?;
                    let elem_ty = arr
                        .ty
                        .as_ref()
                        .map(Type::decayed)
                        .and_then(|t| t.pointee().cloned())
                        .ok_or_else(|| self.err(arr.span, "subscript of non-pointer"))?;
                    let esize = elem_ty.size(self.prog.types).unwrap_or(1);
                    let i = self.expr(idx)?;
                    let scaled = self.scale(i, esize as i64);
                    let dst = self.temp();
                    self.emit(Instr::Bin {
                        dst,
                        op: BinIr::Add,
                        a: base,
                        b: scaled,
                    });
                    Ok(Some((dst.into(), base)))
                }
                ExprKind::Member { obj, field, arrow } => {
                    let (base, rec_ty) = if *arrow {
                        let b = self.expr(obj)?;
                        let t = obj
                            .ty
                            .as_ref()
                            .map(Type::decayed)
                            .and_then(|t| t.pointee().cloned())
                            .ok_or_else(|| self.err(inner.span, "arrow on non-pointer"))?;
                        (b, t)
                    } else if let ExprKind::Deref(x) = &obj.kind {
                        let b = self.expr(x)?;
                        let t = obj
                            .ty
                            .clone()
                            .ok_or_else(|| self.err(inner.span, "untyped member base"))?;
                        (b, t)
                    } else {
                        return Ok(None);
                    };
                    let Type::Record(rid) = rec_ty else {
                        return Err(self.err(inner.span, "member of non-record"));
                    };
                    let off = self
                        .prog
                        .types
                        .record(rid)
                        .field(field)
                        .ok_or_else(|| self.err(inner.span, format!("no field '{field}'")))?
                        .offset;
                    let addr = self.add_offset(base, off as i64);
                    Ok(Some((addr, base)))
                }
                _ => Ok(None),
            },
            ExprKind::Binary(op @ (BinOp::Add | BinOp::Sub), l, r) => {
                let l_ptr = matches!(l.ty.as_ref().map(Type::decayed), Some(Type::Ptr(_)));
                let r_ptr = matches!(r.ty.as_ref().map(Type::decayed), Some(Type::Ptr(_)));
                let (ptr_e, int_e, ptr_first) = match (op, l_ptr, r_ptr) {
                    (_, true, false) => (l, r, true),
                    (BinOp::Add, false, true) => (r, l, false),
                    _ => return Ok(None),
                };
                let elem = ptr_e
                    .ty
                    .as_ref()
                    .map(Type::decayed)
                    .and_then(|t| t.pointee().cloned())
                    .map(|t| t.size(self.prog.types).unwrap_or(1))
                    .unwrap_or(1) as i64;
                // Preserve left-to-right evaluation order.
                let (base, i) = if ptr_first {
                    let b = self.expr(ptr_e)?;
                    (b, self.expr(int_e)?)
                } else {
                    let i = self.expr(int_e)?;
                    (self.expr(ptr_e)?, i)
                };
                let scaled = self.scale(i, elem);
                let ir = if *op == BinOp::Add {
                    BinIr::Add
                } else {
                    BinIr::Sub
                };
                let dst = self.temp();
                self.emit(Instr::Bin {
                    dst,
                    op: ir,
                    a: base,
                    b: scaled,
                });
                Ok(Some((dst.into(), base)))
            }
            ExprKind::Cast(_, inner) => self.lower_value_with_base(inner),
            _ => Ok(None),
        }
    }

    /// Lowers `++`/`--` on any lvalue. Returns (new value, old value).
    /// `protect` carries the annotation base and mode when the operation
    /// was wrapped by the annotator.
    fn lower_incdec(
        &mut self,
        inc: bool,
        target: &Expr,
        protect: Option<(Option<Operand>, bool)>,
    ) -> LResult<(Operand, Operand)> {
        let ty = target
            .ty
            .as_ref()
            .map(Type::decayed)
            .ok_or_else(|| self.err(target.span, "untyped inc/dec target"))?;
        let delta: i64 = match &ty {
            Type::Ptr(p) => p.size(self.prog.types).unwrap_or(1) as i64,
            _ => 1,
        };
        let delta = if inc { delta } else { -delta };
        let p = self.place(target)?;
        // Snapshot the old value into a fresh temp: for register-homed
        // targets `read_place` aliases the variable's register, which the
        // store below overwrites.
        let old_val = self.read_place(p);
        let old = {
            let t = self.temp();
            self.emit(Instr::Mov {
                dst: t,
                src: old_val,
            });
            Operand::Temp(t)
        };
        let raw = self.temp();
        self.emit(Instr::Bin {
            dst: raw,
            op: BinIr::Add,
            a: old,
            b: Operand::Const(delta),
        });
        let new: Operand = match protect {
            None => raw.into(),
            Some((base, checked)) => {
                let base = base.or(Some(old));
                let dst = self.temp();
                if checked {
                    self.emit(Instr::CheckSame {
                        dst,
                        value: raw.into(),
                        base: base.expect("base defaulted to old value"),
                    });
                } else {
                    self.emit(Instr::KeepLive {
                        dst,
                        value: raw.into(),
                        base,
                    });
                }
                dst.into()
            }
        };
        self.write_place(p, new);
        Ok((new, old))
    }

    fn apply_binop(
        &mut self,
        op: BinOp,
        a: Operand,
        b: Operand,
        lty: &Type,
        rhs: &Expr,
    ) -> LResult<Operand> {
        // Compound assignment arithmetic: ptr += n scales.
        if let Type::Ptr(pointee) = lty {
            let esize = pointee.size(self.prog.types).unwrap_or(1) as i64;
            let scaled = self.scale(b, esize);
            let ir = if op == BinOp::Add {
                BinIr::Add
            } else {
                BinIr::Sub
            };
            let dst = self.temp();
            self.emit(Instr::Bin {
                dst,
                op: ir,
                a,
                b: scaled,
            });
            return Ok(dst.into());
        }
        let unsigned = lty.is_unsigned()
            || rhs
                .ty
                .as_ref()
                .map(|t| t.decayed().is_unsigned())
                .unwrap_or(false);
        let ir = Self::int_binir(op, unsigned);
        let dst = self.temp();
        self.emit(Instr::Bin { dst, op: ir, a, b });
        Ok(dst.into())
    }

    fn int_binir(op: BinOp, unsigned: bool) -> BinIr {
        match op {
            BinOp::Add => BinIr::Add,
            BinOp::Sub => BinIr::Sub,
            BinOp::Mul => BinIr::Mul,
            BinOp::Div => {
                if unsigned {
                    BinIr::DivU
                } else {
                    BinIr::Div
                }
            }
            BinOp::Rem => {
                if unsigned {
                    BinIr::RemU
                } else {
                    BinIr::Rem
                }
            }
            BinOp::Shl => BinIr::Shl,
            BinOp::Shr => {
                if unsigned {
                    BinIr::Shr
                } else {
                    BinIr::Sar
                }
            }
            BinOp::BitAnd => BinIr::And,
            BinOp::BitOr => BinIr::Or,
            BinOp::BitXor => BinIr::Xor,
            BinOp::Eq => BinIr::CmpEq,
            BinOp::Ne => BinIr::CmpNe,
            BinOp::Lt => {
                if unsigned {
                    BinIr::CmpLtU
                } else {
                    BinIr::CmpLt
                }
            }
            BinOp::Le => {
                if unsigned {
                    BinIr::CmpLeU
                } else {
                    BinIr::CmpLe
                }
            }
            BinOp::Gt => {
                if unsigned {
                    BinIr::CmpGtU
                } else {
                    BinIr::CmpGt
                }
            }
            BinOp::Ge => {
                if unsigned {
                    BinIr::CmpGeU
                } else {
                    BinIr::CmpGe
                }
            }
            BinOp::LogAnd | BinOp::LogOr => unreachable!("short-circuit ops lowered separately"),
        }
    }

    fn binary(
        &mut self,
        whole: &Expr,
        op: BinOp,
        l: &Expr,
        r: &Expr,
        _ty: &Type,
    ) -> LResult<Operand> {
        match op {
            BinOp::LogAnd | BinOp::LogOr => {
                let rhs_b = self.new_block();
                let join_b = self.new_block();
                let result = self.temp();
                let lv = self.expr(l)?;
                let lbool = self.temp();
                self.emit(Instr::Bin {
                    dst: lbool,
                    op: BinIr::CmpNe,
                    a: lv,
                    b: Operand::Const(0),
                });
                self.emit(Instr::Mov {
                    dst: result,
                    src: lbool.into(),
                });
                if op == BinOp::LogAnd {
                    self.emit(Instr::Branch {
                        cond: lbool.into(),
                        if_true: rhs_b,
                        if_false: join_b,
                    });
                } else {
                    self.emit(Instr::Branch {
                        cond: lbool.into(),
                        if_true: join_b,
                        if_false: rhs_b,
                    });
                }
                self.switch_to(rhs_b);
                let rv = self.expr(r)?;
                let rbool = self.temp();
                self.emit(Instr::Bin {
                    dst: rbool,
                    op: BinIr::CmpNe,
                    a: rv,
                    b: Operand::Const(0),
                });
                self.emit(Instr::Mov {
                    dst: result,
                    src: rbool.into(),
                });
                self.emit(Instr::Jump { target: join_b });
                self.switch_to(join_b);
                return Ok(result.into());
            }
            _ => {}
        }
        let lt = l.ty.as_ref().map(Type::decayed);
        let rt = r.ty.as_ref().map(Type::decayed);
        let l_ptr = matches!(lt, Some(Type::Ptr(_)));
        let r_ptr = matches!(rt, Some(Type::Ptr(_)));
        match (op, l_ptr, r_ptr) {
            (BinOp::Add, true, false) | (BinOp::Sub, true, false) => {
                let elem = lt
                    .as_ref()
                    .and_then(|t| t.pointee().cloned())
                    .map(|t| t.size(self.prog.types).unwrap_or(1))
                    .unwrap_or(1) as i64;
                let a = self.expr(l)?;
                let i = self.expr(r)?;
                let scaled = self.scale(i, elem);
                let ir = if op == BinOp::Add {
                    BinIr::Add
                } else {
                    BinIr::Sub
                };
                let dst = self.temp();
                self.emit(Instr::Bin {
                    dst,
                    op: ir,
                    a,
                    b: scaled,
                });
                Ok(dst.into())
            }
            (BinOp::Add, false, true) => {
                let elem = rt
                    .as_ref()
                    .and_then(|t| t.pointee().cloned())
                    .map(|t| t.size(self.prog.types).unwrap_or(1))
                    .unwrap_or(1) as i64;
                let i = self.expr(l)?;
                let a = self.expr(r)?;
                let scaled = self.scale(i, elem);
                let dst = self.temp();
                self.emit(Instr::Bin {
                    dst,
                    op: BinIr::Add,
                    a,
                    b: scaled,
                });
                Ok(dst.into())
            }
            (BinOp::Sub, true, true) => {
                let elem = lt
                    .as_ref()
                    .and_then(|t| t.pointee().cloned())
                    .map(|t| t.size(self.prog.types).unwrap_or(1))
                    .unwrap_or(1) as i64;
                let a = self.expr(l)?;
                let b = self.expr(r)?;
                let diff = self.temp();
                self.emit(Instr::Bin {
                    dst: diff,
                    op: BinIr::Sub,
                    a,
                    b,
                });
                if elem == 1 {
                    Ok(diff.into())
                } else {
                    let dst = self.temp();
                    self.emit(Instr::Bin {
                        dst,
                        op: BinIr::Div,
                        a: diff.into(),
                        b: Operand::Const(elem),
                    });
                    Ok(dst.into())
                }
            }
            _ => {
                let unsigned = l_ptr
                    || r_ptr
                    || lt.map(|t| t.is_unsigned()).unwrap_or(false)
                    || rt.map(|t| t.is_unsigned()).unwrap_or(false);
                let a = self.expr(l)?;
                let b = self.expr(r)?;
                let ir = Self::int_binir(op, unsigned);
                let _ = whole;
                let dst = self.temp();
                self.emit(Instr::Bin { dst, op: ir, a, b });
                Ok(dst.into())
            }
        }
    }

    /// Narrowing conversions truncate (with sign/zero extension) so that
    /// register-homed and memory-homed values behave identically.
    fn truncate_to(&mut self, v: Operand, to: &Type) -> Operand {
        let (bits, signed) = match to {
            Type::Char => (8u32, true),
            Type::Int => (32, true),
            Type::UInt => (32, false),
            _ => return v,
        };
        let sh = 64 - bits;
        let t1 = self.temp();
        self.emit(Instr::Bin {
            dst: t1,
            op: BinIr::Shl,
            a: v,
            b: Operand::Const(sh as i64),
        });
        let t2 = self.temp();
        let op = if signed { BinIr::Sar } else { BinIr::Shr };
        self.emit(Instr::Bin {
            dst: t2,
            op,
            a: t1.into(),
            b: Operand::Const(sh as i64),
        });
        t2.into()
    }

    fn lower_call(
        &mut self,
        whole: &Expr,
        callee: &Expr,
        args: &[Expr],
        ret_ty: &Type,
    ) -> LResult<Operand> {
        let target = match &callee.kind {
            ExprKind::Ident(name) => match self.prog.sema.res.get(&callee.id).cloned() {
                Some(Resolution::Func(fname)) => {
                    let idx = self.prog.func_indices.get(&fname).ok_or_else(|| {
                        self.err(callee.span, format!("function '{fname}' has no definition"))
                    })?;
                    CallTarget::Func(*idx)
                }
                Some(Resolution::Builtin(b)) => CallTarget::Builtin(b),
                Some(Resolution::Local(_) | Resolution::Global(_)) => {
                    let f = self.expr(callee)?;
                    CallTarget::Indirect(f)
                }
                _ => return Err(self.err(callee.span, format!("cannot call '{name}'"))),
            },
            _ => {
                let f = self.expr(callee)?;
                CallTarget::Indirect(f)
            }
        };
        let mut arg_ops = Vec::with_capacity(args.len());
        for a in args {
            arg_ops.push(self.expr(a)?);
        }
        let dst = if *ret_ty == Type::Void {
            None
        } else {
            Some(self.temp())
        };
        // Allocation builtins get an allocation-site record keyed by the
        // id and span of the whole call expression; line/col are bound to
        // the requesting source once compilation finishes (see
        // `ProgramIr::rebind_alloc_sites`).
        let primitive = match &target {
            CallTarget::Builtin(cfront::sema::Builtin::Malloc) => Some("malloc"),
            CallTarget::Builtin(cfront::sema::Builtin::Calloc) => Some("calloc"),
            CallTarget::Builtin(cfront::sema::Builtin::Realloc) => Some("realloc"),
            _ => None,
        };
        let site = primitive.map(|primitive| {
            let idx = self.prog.alloc_sites.len() as u32;
            self.prog.alloc_sites.push(AllocSite {
                func: self.func.name.clone(),
                primitive,
                node: whole.id,
                span_start: whole.span.start,
                line: 0,
                col: 0,
            });
            idx
        });
        self.emit(Instr::Call {
            dst,
            target,
            args: arg_ops,
            site,
        });
        Ok(dst.map(Operand::Temp).unwrap_or(Operand::Const(0)))
    }
}
