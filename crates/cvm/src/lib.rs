//! # cvm — compiler backend and executing VM
//!
//! Plays the role of gcc + the target machine in the paper's pipeline:
//!
//! * [`lower`] — AST → three-address [`ir`], with a register regime
//!   (`-O`-style) and an everything-in-memory regime (`-g`-style);
//! * [`opt`] — the optimizer, including the pointer-*disguising* passes
//!   the paper warns about (displacement reassociation, eager scheduling)
//!   and full support for the `KEEP_LIVE` barrier semantics;
//! * [`liveness`] — temp liveness; dead registers are not GC roots, which
//!   is what makes the hazard real;
//! * [`vm`] — an interpreter over the simulated address space with the
//!   conservative collector attached and per-block execution profiles;
//! * [`machine`] — cycle cost models for the paper's three machines.
//!
//! ## Example: allocate, mutate, survive
//!
//! ```
//! use cvm::{compile, run_compiled, CompileOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = r#"
//!     int main(void) {
//!         char *p = (char *) malloc(8);
//!         p[0] = 42;
//!         return p[0];
//!     }
//! "#;
//! let prog = compile(src, &CompileOptions::optimized())?;
//! let outcome = run_compiled(&prog, &cvm::VmOptions::default())?;
//! assert_eq!(outcome.exit_code, 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ir;
pub mod liveness;
pub mod lower;
pub mod machine;
pub mod opt;
pub mod verify;
pub mod vm;

pub use ir::{BinIr, Block, BlockId, CallTarget, FuncIr, Instr, Operand, ProgramIr, Temp};
pub use liveness::{gc_root_maps, Liveness, TempSet};
pub use lower::{lower, LowerError, LowerOptions};
pub use machine::Machine;
pub use opt::{
    optimize, optimize_func, optimize_func_ledger, optimize_func_traced, optimize_traced,
    pass_names, OptOptions, PassLedger,
};
pub use verify::{verify_func, verify_program, verify_program_traced, Violation};
pub use vm::{run, ExecOutcome, Profile, VmError, VmOptions};

pub use gctrace::TraceHandle;

use gcsafe::Config as AnnotConfig;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

/// End-to-end compilation options: the paper's measurement axes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct CompileOptions {
    /// Annotation config, if the gcsafe/checked preprocessor runs.
    pub annotate: Option<AnnotConfig>,
    /// Optimizer settings.
    pub opt: OptOptions,
    /// Lowering regime.
    pub lower: LowerOptions,
}

impl CompileOptions {
    /// `-O`: plain optimized build (the baseline).
    pub fn optimized() -> Self {
        CompileOptions {
            annotate: None,
            opt: OptOptions::full(),
            lower: LowerOptions::default(),
        }
    }

    /// `-O safe`: annotated for GC-safety, then optimized.
    pub fn optimized_safe() -> Self {
        CompileOptions {
            annotate: Some(AnnotConfig::gc_safe()),
            ..Self::optimized()
        }
    }

    /// `-O safe` with the paper's strawman `KEEP_LIVE` implementation: a
    /// real call to an opaque identity function ("terribly inefficient").
    pub fn optimized_safe_naive() -> Self {
        let mut o = Self::optimized_safe();
        o.lower.keep_live_as_call = true;
        o
    }

    /// `-g`: fully debuggable (all locals in memory, no optimizer).
    pub fn debug() -> Self {
        CompileOptions {
            annotate: None,
            opt: OptOptions::none(),
            lower: LowerOptions {
                all_locals_in_memory: true,
                keep_live_as_call: false,
            },
        }
    }

    /// `-g checked`: debuggable plus pointer-arithmetic checking.
    pub fn debug_checked() -> Self {
        CompileOptions {
            annotate: Some(AnnotConfig::checked()),
            ..Self::debug()
        }
    }
}

/// Compiles C-subset source through parse → (annotate) → lower →
/// (optimize).
///
/// # Errors
///
/// Returns a rendered parse/sema/lowering error message.
pub fn compile(source: &str, options: &CompileOptions) -> Result<ProgramIr, String> {
    compile_traced(source, options, &TraceHandle::disabled())
}

/// [`compile`] with a trace: the annotator's audit events, the
/// optimizer's per-pass rewrite events, and — for annotated builds — the
/// static verifier's per-function verdicts all flow to `trace`.
///
/// # Errors
///
/// Same as [`compile`].
pub fn compile_traced(
    source: &str,
    options: &CompileOptions,
    trace: &TraceHandle,
) -> Result<ProgramIr, String> {
    compile_keyed_traced(source, options, trace).map(|(ir, _)| ir)
}

/// One memoized end-to-end compilation: the optimized (and, for annotated
/// builds, verified) IR, plus — when the producing run was traced — the
/// exact source fingerprint and the full compile-time event stream
/// (annotate audit, optimizer summaries, verifier verdicts) for replay.
struct CompileEntry {
    ir: ProgramIr,
    events: Option<(u64, Vec<gctrace::Event>)>,
}

/// Lower-cache key: structural program hash, the annotation configuration
/// (None for unannotated builds), and the lowering options.
type LowerKey = (u64, Option<AnnotConfig>, LowerOptions);

fn lower_cache() -> &'static gccache::Cache<LowerKey, Arc<ProgramIr>> {
    static CACHE: OnceLock<gccache::Cache<LowerKey, Arc<ProgramIr>>> = OnceLock::new();
    CACHE.get_or_init(|| gccache::Cache::new("lower", 512))
}

fn compile_cache() -> &'static gccache::Cache<(u64, CompileOptions), Arc<CompileEntry>> {
    static CACHE: OnceLock<gccache::Cache<(u64, CompileOptions), Arc<CompileEntry>>> =
        OnceLock::new();
    CACHE.get_or_init(|| gccache::Cache::new("compile", 512))
}

/// Counter snapshots for every pipeline-stage cache this crate (and the
/// annotator beneath it) maintains: `annotate`, `lower`, `compile`.
pub fn pipeline_cache_stats() -> Vec<gccache::StageStats> {
    vec![
        gcsafe::annotate_cache_stats(),
        lower_cache().stats(),
        compile_cache().stats(),
    ]
}

/// Drops every memoized pipeline artifact (counters are cumulative).
/// Safe at any time: a cleared cache only changes speed, never results.
pub fn pipeline_cache_clear() {
    gcsafe::annotate_cache_clear();
    lower_cache().clear();
    compile_cache().clear();
}

/// Builds the requester's `NodeId → span.start` table for alloc-site
/// re-binding. Only function bodies matter: allocation calls cannot occur
/// in global initializers.
fn node_spans(program: &cfront::Program) -> HashMap<cfront::NodeId, usize> {
    let mut spans = HashMap::new();
    for f in &program.funcs {
        if let Some(body) = &f.body {
            for stmt in &body.stmts {
                cfront::ast::visit_exprs(stmt, &mut |e| {
                    spans.insert(e.id, e.span.start);
                });
            }
        }
    }
    spans
}

/// [`compile_traced`], additionally returning the compilation key — the
/// fingerprint of (structural program hash, options) that downstream
/// caches (per-machine asm in the facade) key their own artifacts on.
///
/// The pipeline is memoized per stage in process-global caches:
///
/// * **annotate** (in `gcsafe`) — keyed by structural hash + config,
///   usable only for the exact source text (edit lists are positional);
/// * **lower** — un-optimized [`ProgramIr`] keyed by structural hash +
///   annotation config + lowering options, shared across formatting;
/// * **compile** — the finished IR keyed by structural hash + the full
///   [`CompileOptions`], shared across formatting.
///
/// Determinism contract: a cache hit is byte-identical to a cold compile.
/// Alloc-site labels are re-bound to the requesting program's AST on
/// every path, and traced requests only accept entries that carry the
/// event stream of an identical source text, replaying it verbatim;
/// otherwise the event-emitting stages run live and the entry is
/// refreshed.
///
/// # Errors
///
/// Same as [`compile`].
pub fn compile_keyed_traced(
    source: &str,
    options: &CompileOptions,
    trace: &TraceHandle,
) -> Result<(ProgramIr, u64), String> {
    let parsed = cfront::parse(source).map_err(|e| e.render(source))?;
    let h = cfront::program_hash(&parsed);
    let spans = node_spans(&parsed);
    let key = (h, options.clone());
    let ckey = {
        let mut f = gccache::Fnv1a::new();
        key.hash(&mut f);
        f.finish()
    };
    let src_fp = gccache::fingerprint(source.as_bytes());
    let traced = trace.is_enabled();

    if let Some(entry) = compile_cache().get_if(&key, |e| {
        !traced || e.events.as_ref().is_some_and(|(fp, _)| *fp == src_fp)
    }) {
        if traced {
            if let Some((_, events)) = &entry.events {
                for ev in events {
                    trace.emit(|| ev.clone());
                }
            }
        }
        let mut ir = entry.ir.clone();
        ir.rebind_alloc_sites(&spans, source);
        return Ok((ir, ckey));
    }

    // Cold path (or a traced request for which no replayable event stream
    // exists). Tee the trace so the event stream can be stored alongside
    // the artifact.
    let capture = trace
        .sink()
        .map(|inner| Arc::new(gctrace::CaptureSink::new(inner)));
    let work_trace = match &capture {
        Some(c) => TraceHandle::new(c.clone()),
        None => TraceHandle::disabled(),
    };

    let lkey = (h, options.annotate.clone(), options.lower);
    let annotating = options.annotate.is_some();
    // When traced and annotating, the annotate stage must run (or replay
    // from its own cache) even if the lowered IR is already memoized —
    // the audit events are part of the compile's observable output.
    let lowered = if traced && annotating {
        None
    } else {
        lower_cache().get(&lkey)
    };
    let mut ir = match lowered {
        Some(ir) => (*ir).clone(),
        None => {
            let (program, sema) = match &options.annotate {
                Some(cfg) => {
                    let annotated =
                        gcsafe::annotate_parsed_traced(parsed, source, cfg, &work_trace)
                            .map_err(|e| e.render(source))?;
                    (annotated.program, annotated.sema)
                }
                None => {
                    let mut program = parsed;
                    let sema = cfront::analyze(&mut program).map_err(|e| e.render(source))?;
                    (program, sema)
                }
            };
            // The annotate stage ran for its events; the lowered IR may
            // still be memoized when the pre-annotate lookup was skipped.
            let memoized = if traced && annotating {
                lower_cache().get(&lkey)
            } else {
                None
            };
            match memoized {
                Some(ir) => (*ir).clone(),
                None => {
                    let ir = lower(&program, &sema, options.lower).map_err(|e| e.to_string())?;
                    lower_cache().insert(lkey, Arc::new(ir.clone()));
                    ir
                }
            }
        }
    };
    optimize_traced(&mut ir, options.opt, &work_trace);
    // The verifier is observability-only here: run it (and emit verdicts)
    // only when someone is listening, and only for annotated builds where
    // a clean verdict is the expected invariant.
    if work_trace.is_enabled() && annotating {
        let _ = verify_program_traced(&ir, false, &work_trace);
    }
    compile_cache().insert(
        key,
        Arc::new(CompileEntry {
            ir: ir.clone(),
            events: capture.map(|c| (src_fp, c.take())),
        }),
    );
    ir.rebind_alloc_sites(&spans, source);
    Ok((ir, ckey))
}

/// Runs a compiled program.
///
/// # Errors
///
/// Propagates [`VmError`].
pub fn run_compiled(prog: &ProgramIr, opts: &VmOptions) -> Result<ExecOutcome, VmError> {
    vm::run(prog, opts)
}

/// Compiles and runs in one call.
///
/// # Errors
///
/// Compilation errors are rendered into [`VmError::Malformed`].
pub fn compile_and_run(
    source: &str,
    copts: &CompileOptions,
    vopts: &VmOptions,
) -> Result<ExecOutcome, VmError> {
    let prog = compile(source, copts).map_err(VmError::Malformed)?;
    run_compiled(&prog, vopts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_src(src: &str) -> ExecOutcome {
        compile_and_run(src, &CompileOptions::optimized(), &VmOptions::default())
            .expect("program runs")
    }

    fn run_all_modes(src: &str, input: &[u8]) -> Vec<(String, ExecOutcome)> {
        let modes = [
            ("-O", CompileOptions::optimized()),
            ("-O safe", CompileOptions::optimized_safe()),
            ("-g", CompileOptions::debug()),
            ("-g checked", CompileOptions::debug_checked()),
        ];
        modes
            .into_iter()
            .map(|(name, c)| {
                let v = VmOptions {
                    input: input.to_vec(),
                    ..VmOptions::default()
                };
                let out = compile_and_run(src, &c, &v).unwrap_or_else(|e| panic!("{name}: {e}"));
                (name.to_string(), out)
            })
            .collect()
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let src = r#"
            int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
            int main(void) { return fib(10); }
        "#;
        assert_eq!(run_src(src).exit_code, 55);
    }

    #[test]
    fn loops_and_arrays() {
        let src = r#"
            int main(void) {
                int a[10];
                int i;
                int s = 0;
                for (i = 0; i < 10; i++) a[i] = i * i;
                for (i = 0; i < 10; i++) s += a[i];
                return s;
            }
        "#;
        assert_eq!(run_src(src).exit_code, 285);
    }

    #[test]
    fn heap_linked_list() {
        let src = r#"
            struct node { long v; struct node *next; };
            int main(void) {
                struct node *head = 0;
                long i;
                long s = 0;
                for (i = 0; i < 100; i++) {
                    struct node *n = (struct node *) malloc(sizeof(struct node));
                    n->v = i;
                    n->next = head;
                    head = n;
                }
                while (head) { s += head->v; head = head->next; }
                return (int)(s % 256);
            }
        "#;
        // sum 0..99 = 4950; 4950 % 256 = 86
        assert_eq!(run_src(src).exit_code, 86);
    }

    #[test]
    fn strings_and_io() {
        let src = r#"
            int main(void) {
                char *msg = "hi";
                putstr(msg);
                putchar('!');
                putint(123);
                return 0;
            }
        "#;
        assert_eq!(run_src(src).output, b"hi!123");
    }

    #[test]
    fn getchar_consumes_input() {
        let src = r#"
            int main(void) {
                int c;
                int n = 0;
                while ((c = getchar()) != -1) { if (c == 'x') n++; }
                return n;
            }
        "#;
        let v = VmOptions {
            input: b"axxbx".to_vec(),
            ..VmOptions::default()
        };
        let out = compile_and_run(src, &CompileOptions::optimized(), &v).unwrap();
        assert_eq!(out.exit_code, 3);
    }

    #[test]
    fn switch_with_fallthrough() {
        let src = r#"
            int classify(int c) {
                int r = 0;
                switch (c) {
                    case 1:
                    case 2: r = 10; break;
                    case 3: r = 20; break;
                    default: r = 30;
                }
                return r;
            }
            int main(void) {
                return classify(1) + classify(2) + classify(3) + classify(9);
            }
        "#;
        assert_eq!(run_src(src).exit_code, 10 + 10 + 20 + 30);
    }

    #[test]
    fn function_pointers_dispatch() {
        let src = r#"
            int add(int a, int b) { return a + b; }
            int mul(int a, int b) { return a * b; }
            int main(void) {
                int (*ops[2])(int, int);
                ops[0] = add;
                ops[1] = mul;
                return ops[0](3, 4) + ops[1](3, 4);
            }
        "#;
        assert_eq!(run_src(src).exit_code, 19);
    }

    #[test]
    fn all_modes_agree_on_output() {
        let src = r#"
            struct cell { long v; struct cell *next; };
            struct cell *push(struct cell *head, long v) {
                struct cell *c = (struct cell *) malloc(sizeof(struct cell));
                c->v = v;
                c->next = head;
                return c;
            }
            int main(void) {
                struct cell *head = 0;
                long i;
                long sum = 0;
                char buf[32];
                for (i = 1; i <= 50; i++) head = push(head, i * 3);
                while (head) { sum += head->v; head = head->next; }
                buf[0] = 'S'; buf[1] = 0;
                putstr(buf);
                putint(sum);
                return 0;
            }
        "#;
        let results = run_all_modes(src, b"");
        let baseline = &results[0].1;
        assert_eq!(baseline.output, b"S3825");
        for (name, out) in &results[1..] {
            assert_eq!(out.output, baseline.output, "{name} output diverges");
            assert_eq!(out.exit_code, baseline.exit_code, "{name} exit diverges");
        }
    }

    #[test]
    fn gc_reclaims_garbage_during_run() {
        let src = r#"
            int main(void) {
                long i;
                char *keep = (char *) malloc(64);
                keep[0] = 7;
                for (i = 0; i < 50000; i++) {
                    char *junk = (char *) malloc(64);
                    junk[0] = (char) i;
                }
                return keep[0];
            }
        "#;
        let v = VmOptions {
            heap_bytes: 4 << 20, // 4 MiB forces many collections
            ..VmOptions::default()
        };
        let out = compile_and_run(src, &CompileOptions::optimized(), &v).unwrap();
        assert_eq!(out.exit_code, 7, "reachable object survives");
        assert!(out.heap.collections > 0, "collections happened");
        assert!(out.heap.objects_freed > 10_000, "garbage was reclaimed");
    }

    #[test]
    fn checked_mode_catches_out_of_object_arithmetic() {
        // The classic one-before-the-array idiom the paper calls "a common
        // bug (sometimes referred to incorrectly as a 'technique')".
        let src = r#"
            int main(void) {
                long *a = (long *) malloc(10 * sizeof(long));
                long *one_based = a - 1;
                one_based[1] = 5;
                return (int) one_based[1];
            }
        "#;
        let ok = compile_and_run(src, &CompileOptions::optimized(), &VmOptions::default());
        assert!(ok.is_ok(), "unchecked build tolerates the idiom");
        let checked = compile_and_run(src, &CompileOptions::debug_checked(), &VmOptions::default());
        match checked {
            Err(VmError::CheckFailed { .. }) => {}
            other => panic!("checked mode must fail, got {other:?}"),
        }
    }

    #[test]
    fn checked_mode_allows_legal_arithmetic() {
        let src = r#"
            int main(void) {
                char *s = (char *) malloc(16);
                char *p = s;
                int i;
                for (i = 0; i < 15; i++) *p++ = 'a';
                *p = 0;
                return (int) strlen(s);
            }
        "#;
        let out = compile_and_run(src, &CompileOptions::debug_checked(), &VmOptions::default())
            .expect("legal arithmetic passes the checker");
        assert_eq!(out.exit_code, 15);
    }

    #[test]
    fn struct_copy_assignment() {
        let src = r#"
            struct pair { long a; long b; };
            int main(void) {
                struct pair x;
                struct pair y;
                x.a = 3; x.b = 4;
                y = x;
                y.b = 9;
                return (int)(x.a + x.b + y.a + y.b);
            }
        "#;
        assert_eq!(run_src(src).exit_code, 19);
    }

    #[test]
    fn global_variables_and_initializers() {
        let src = r#"
            int counter = 5;
            long table[4] = {10, 20, 30, 40};
            char *greeting = "yo";
            int bump(void) { counter++; return counter; }
            int main(void) {
                bump(); bump();
                return counter + (int) table[2] + (int) strlen(greeting);
            }
        "#;
        assert_eq!(run_src(src).exit_code, 7 + 30 + 2);
    }

    #[test]
    fn ternary_and_logical_ops() {
        let src = r#"
            int crash(void) { abort(); return 0; }
            int main(void) {
                int a = 5;
                int b = 0;
                int c = (a && !b) ? 10 : 20;
                int d = (a || b) ? 1 : 2;
                int e = (b && crash()) ? 99 : 3;
                return c + d + e;
            }
        "#;
        assert_eq!(run_src(src).exit_code, 14);
    }

    #[test]
    fn step_limit_enforced() {
        let src = "int main(void) { for(;;); return 0; }";
        let v = VmOptions {
            max_steps: 10_000,
            ..VmOptions::default()
        };
        let r = compile_and_run(src, &CompileOptions::optimized(), &v);
        assert_eq!(r.unwrap_err(), VmError::StepLimit);
    }

    #[test]
    fn profile_counts_blocks() {
        let src = r#"
            int main(void) {
                int i;
                int s = 0;
                for (i = 0; i < 17; i++) s += i;
                return s;
            }
        "#;
        let out = run_src(src);
        let total: u64 = out.profile.block_counts.iter().flatten().sum();
        assert!(total >= 17, "loop blocks counted: {total}");
    }

    #[test]
    fn naive_keep_live_is_correct_but_much_slower() {
        // The paper: the external-identity-function implementation "is,
        // of course, terribly inefficient".
        let src = r#"
            int main(void) {
                char *a = (char *) malloc(64);
                long i;
                long s = 0;
                for (i = 0; i < 60; i++) a[i] = (char)(i & 7);
                for (i = 0; i < 60; i++) s += a[i];
                putint(s);
                return 0;
            }
        "#;
        let fast = compile_and_run(
            src,
            &CompileOptions::optimized_safe(),
            &VmOptions::default(),
        )
        .expect("asm-style KEEP_LIVE runs");
        let naive = compile_and_run(
            src,
            &CompileOptions::optimized_safe_naive(),
            &VmOptions::default(),
        )
        .expect("call-style KEEP_LIVE runs");
        assert_eq!(fast.output, naive.output, "same semantics");
        let count_calls = |o: &ExecOutcome| {
            o.profile
                .builtin_calls
                .get(&cfront::sema::Builtin::KeepLiveFn)
                .copied()
                .unwrap_or(0)
        };
        assert_eq!(count_calls(&fast), 0);
        assert!(count_calls(&naive) >= 120, "a call per protected access");
    }

    #[test]
    fn traced_compile_emits_optimizer_and_verifier_events() {
        let src = "char f(char *p, long i) { return p[i - 1000]; } int main(void){ return 0; }";
        let (trace, sink) = TraceHandle::memory();
        let traced = compile_traced(src, &CompileOptions::optimized_safe(), &trace).unwrap();
        let untraced = compile(src, &CompileOptions::optimized_safe()).unwrap();
        assert_eq!(
            traced.funcs.len(),
            untraced.funcs.len(),
            "tracing is observation-only"
        );
        let events = sink.snapshot();
        let summaries: Vec<_> = events
            .iter()
            .filter(|e| e.stage == "opt" && e.kind == "function")
            .collect();
        assert_eq!(
            summaries.len(),
            traced.funcs.len(),
            "one summary per function"
        );
        let verdicts: Vec<_> = events
            .iter()
            .filter(|e| e.stage == "verify" && e.kind == "verdict")
            .collect();
        assert_eq!(
            verdicts.len(),
            traced.funcs.len(),
            "one verdict per function"
        );
        assert!(
            verdicts
                .iter()
                .all(|e| e.get("ok") == Some(&gctrace::Value::Bool(true))),
            "annotated builds verify clean: {verdicts:?}"
        );
        assert!(
            events.iter().any(|e| e.stage == "annotate"),
            "annotation audit events flow through the same sink"
        );
    }

    #[test]
    fn traced_run_emits_a_vm_summary() {
        let src = r#"
            int main(void) {
                long i;
                for (i = 0; i < 2000; i++) { char *p = (char *) malloc(256); p[0] = 1; }
                putstr("done");
                return 3;
            }
        "#;
        let prog = compile(src, &CompileOptions::optimized()).unwrap();
        let (trace, sink) = TraceHandle::memory();
        let v = VmOptions {
            heap_bytes: 1 << 18, // small heap forces collections
            trace,
            ..VmOptions::default()
        };
        let out = run_compiled(&prog, &v).expect("program runs");
        let events = sink.snapshot();
        let runs: Vec<_> = events
            .iter()
            .filter(|e| e.stage == "vm" && e.kind == "run")
            .collect();
        assert_eq!(runs.len(), 1);
        let run = runs[0];
        assert_eq!(run.get("exit_code"), Some(&gctrace::Value::Int(3)));
        assert_eq!(run.get("steps"), Some(&gctrace::Value::UInt(out.steps)));
        assert_eq!(run.get("output_bytes"), Some(&gctrace::Value::UInt(4)));
        assert_eq!(
            run.get("collections"),
            Some(&gctrace::Value::UInt(out.heap.collections))
        );
        // The collector shares the handle: its timeline lands in the same
        // sink, one event per collection.
        let gcs = events
            .iter()
            .filter(|e| e.stage == "gc" && e.kind == "collection")
            .count();
        assert_eq!(gcs as u64, out.heap.collections);
        assert!(
            out.heap.collections > 0,
            "small heap collected at least once"
        );
    }

    #[test]
    fn alloc_sites_resolve_to_source_positions() {
        let src = "int main(void) {\n    char *p = (char *) malloc(8);\n    char *q = (char *) calloc(2, 4);\n    p[0] = 1; q[0] = 2;\n    return 0;\n}\n";
        let prog = compile(src, &CompileOptions::optimized()).unwrap();
        assert_eq!(prog.alloc_sites.len(), 2, "{:?}", prog.alloc_sites);
        let labels: Vec<String> = prog.alloc_sites.iter().map(|s| s.label()).collect();
        assert_eq!(labels[0], "malloc@2:24", "{:?}", prog.alloc_sites);
        assert_eq!(labels[1], "calloc@3:24", "{:?}", prog.alloc_sites);
        assert!(prog.alloc_sites.iter().all(|s| s.func == "main"));
    }

    #[test]
    fn profiled_run_attributes_allocations_to_call_stacks() {
        let src = r#"
            struct cell { long v; struct cell *next; };
            struct cell *push(struct cell *head, long v) {
                struct cell *c = (struct cell *) malloc(sizeof(struct cell));
                c->v = v;
                c->next = head;
                return c;
            }
            int main(void) {
                struct cell *head = 0;
                long i;
                for (i = 0; i < 10; i++) head = push(head, i);
                return 0;
            }
        "#;
        let prog = compile(src, &CompileOptions::optimized()).unwrap();
        let prof = gcprof::ProfHandle::enabled();
        let v = VmOptions {
            prof: prof.clone(),
            ..VmOptions::default()
        };
        run_compiled(&prog, &v).expect("program runs");
        let data = prof.snapshot().expect("enabled handle snapshots");
        assert_eq!(data.sites.len(), 1, "one allocation site: {:?}", data.sites);
        let (key, stats) = data.sites.iter().next().unwrap();
        assert!(
            key.starts_with("main;push;malloc@"),
            "stack-qualified site key: {key}"
        );
        assert_eq!(stats.allocs, 10);
        assert_eq!(stats.bytes, 10 * 16);
        // The heap side of the handle sees the same allocations.
        assert_eq!(data.alloc_size.count(), 10);
        let census = data.census.as_ref().expect("final census recorded");
        assert_eq!(
            census.live_objects,
            census.classes.iter().map(|c| c.live_objects).sum::<u64>()
        );
    }

    #[test]
    fn safe_mode_ir_contains_keep_live() {
        let src = "char f(char *p, long i) { return p[i - 1000]; } int main(void){ return 0; }";
        let base = compile(src, &CompileOptions::optimized()).unwrap();
        let safe = compile(src, &CompileOptions::optimized_safe()).unwrap();
        let f_base = &base.funcs[base.func_index("f").unwrap()];
        let f_safe = &safe.funcs[safe.func_index("f").unwrap()];
        assert!(!f_base.dump().contains("keep_live"));
        assert!(f_safe.dump().contains("keep_live"), "{}", f_safe.dump());
    }
}
