//! Sparse conditional constant propagation.
//!
//! Evaluates the function over a three-point lattice (unknown / constant
//! / varying) while tracking which blocks are reachable: a branch whose
//! condition is a known constant only makes its taken edge reachable, so
//! constants that merge identically over *reachable* definitions fold
//! even when a dead path would have disagreed. The transform rewrites
//! temp uses whose lattice value is a single constant into immediate
//! operands; `const_fold` then collapses the enclosing instructions and
//! constant branches on the same sweep, which widens the set of
//! never-taken edges the next sweep can exploit.
//!
//! GC relevance: collapsing a branch to a jump deletes every collection
//! point on the dead path from the cycle tables — and shortens the live
//! ranges the annotator reasoned about. `KeepLive`/`CheckSame`/`Call`/
//! `Load` results are lattice-varying by construction, so no constant is
//! ever propagated *through* a barrier (the `keep_live(7)` test shape
//! stays un-folded).
//!
//! Because the IR is not SSA, a temp's lattice value is the join over
//! all of its reachable definitions, and a use is only rewritten when
//! some definition of the temp dominates it (first-iteration reads of a
//! loop-carried temp otherwise observe the VM's zero-initialised frame,
//! not a definition on a dominating path).

use super::cfg::dominators_masked;
use super::rewrite_operands;
use crate::ir::*;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lat {
    Unknown,
    Const(i64),
    Varying,
}

fn join(a: Lat, b: Lat) -> Lat {
    match (a, b) {
        (Lat::Unknown, x) | (x, Lat::Unknown) => x,
        (Lat::Const(x), Lat::Const(y)) if x == y => Lat::Const(x),
        _ => Lat::Varying,
    }
}

/// Runs sparse conditional constant propagation; returns the number of
/// operands rewritten to constants.
pub fn sccp(f: &mut FuncIr) -> usize {
    let n = f.blocks.len();
    let tn = f.temp_count as usize;
    let mut reach = vec![false; n];
    if n == 0 {
        return 0;
    }
    reach[0] = true;
    let mut lat = vec![Lat::Unknown; tn];
    for &p in &f.param_temps {
        if (p.0 as usize) < tn {
            lat[p.0 as usize] = Lat::Varying;
        }
    }
    let op_lat = |o: Operand, lat: &[Lat]| match o {
        Operand::Const(c) => Lat::Const(c),
        Operand::Temp(t) => lat.get(t.0 as usize).copied().unwrap_or(Lat::Varying),
    };
    // Propagate to a fixpoint; both the lattice and the reachable set
    // only grow monotonically, so this terminates.
    loop {
        let mut changed = false;
        for bi in 0..n {
            if !reach[bi] {
                continue;
            }
            for ins in &f.blocks[bi].instrs {
                let val = match ins {
                    Instr::Const { dst, value } => Some((*dst, Lat::Const(*value))),
                    Instr::Mov { dst, src } => Some((*dst, op_lat(*src, &lat))),
                    Instr::Bin { dst, op, a, b } => {
                        let v = match (op_lat(*a, &lat), op_lat(*b, &lat)) {
                            (Lat::Const(x), Lat::Const(y)) => Lat::Const(op.eval(x, y)),
                            (Lat::Unknown, _) | (_, Lat::Unknown) => Lat::Unknown,
                            _ => Lat::Varying,
                        };
                        Some((*dst, v))
                    }
                    // Barriers, calls, loads, frame addresses: opaque.
                    _ => ins.dst().map(|d| (d, Lat::Varying)),
                };
                if let Some((d, v)) = val {
                    if let Some(slot) = lat.get_mut(d.0 as usize) {
                        let j = join(*slot, v);
                        if j != *slot {
                            *slot = j;
                            changed = true;
                        }
                    }
                }
            }
            // Mark successor edges executable.
            let succs: Vec<usize> = match f.blocks[bi].instrs.last() {
                Some(Instr::Jump { target }) => vec![target.0 as usize],
                Some(Instr::Branch {
                    cond,
                    if_true,
                    if_false,
                }) => match op_lat(*cond, &lat) {
                    Lat::Const(c) => vec![if c != 0 { if_true.0 } else { if_false.0 } as usize],
                    _ => vec![if_true.0 as usize, if_false.0 as usize],
                },
                _ => vec![],
            };
            for s in succs {
                if s < n && !reach[s] {
                    reach[s] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Transform: rewrite dominated uses of constant temps in reachable
    // blocks into immediates. Dominance is taken over the reachable
    // subgraph: an unreachable arm of a merge must not hide that the
    // reachable definition covers every executable path.
    let dom = dominators_masked(f, &reach);
    let mut def_sites: HashMap<Temp, Vec<(usize, usize)>> = HashMap::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        if !reach[bi] {
            continue;
        }
        for (ii, ins) in b.instrs.iter().enumerate() {
            if let Some(d) = ins.dst() {
                def_sites.entry(d).or_default().push((bi, ii));
            }
        }
    }
    let mut fires = 0usize;
    for bi in 0..n {
        if !reach[bi] {
            continue;
        }
        for ii in 0..f.blocks[bi].instrs.len() {
            let dominated = |t: Temp| {
                def_sites.get(&t).is_some_and(|sites| {
                    sites.iter().any(|&(dbi, dii)| {
                        (dbi == bi && dii < ii) || (dbi != bi && dom[bi].contains(&dbi))
                    })
                })
            };
            rewrite_operands(&mut f.blocks[bi].instrs[ii], |o| match o {
                Operand::Temp(t) => match lat.get(t.0 as usize) {
                    Some(Lat::Const(c)) if dominated(t) => {
                        fires += 1;
                        Operand::Const(*c)
                    }
                    _ => o,
                },
                c => c,
            });
        }
    }
    fires
}
