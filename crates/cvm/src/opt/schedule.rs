//! Eager scheduling.

use crate::ir::*;

/// Eager scheduling: moves pure instructions as early in their block as
/// their operands allow — in particular above calls (conventional latency
/// hiding). `KeepLive` / `CheckSame` are ordering points and never move;
/// loads don't move above stores/calls. Returns the number of
/// instructions moved.
///
/// A move is only committed when it crosses at least one non-movable
/// instruction (a call or memory op — the latency win), and it lands
/// directly above the topmost one crossed. Crossing nothing but pure
/// instructions would reorder without gain, and is exactly the move that
/// oscillates: two independent pure instructions leapfrog each other on
/// every run, which would spin the fixpoint driver to its sweep cap.
/// With gainless moves skipped the pass is idempotent.
pub fn schedule_early(f: &mut FuncIr) -> usize {
    let mut moves = 0usize;
    for b in &mut f.blocks {
        let n = b.instrs.len();
        if n < 2 {
            continue;
        }
        let mut i = 1;
        while i < n {
            if movable(&b.instrs[i]) {
                // Find the earliest legal slot, honouring true, anti, and
                // output dependences.
                let mut deps = Vec::new();
                b.instrs[i].uses(&mut deps);
                let our_dst = b.instrs[i].dst();
                let mut slot = i;
                while slot > 0 {
                    let prev = &b.instrs[slot - 1];
                    let prev_dst = prev.dst();
                    let true_dep = prev_dst.map(|d| deps.contains(&d)).unwrap_or(false);
                    let mut prev_uses = Vec::new();
                    prev.uses(&mut prev_uses);
                    let anti_dep = our_dst.map(|d| prev_uses.contains(&d)).unwrap_or(false);
                    let output_dep = our_dst.is_some() && prev_dst == our_dst;
                    if true_dep || anti_dep || output_dep || is_ordering_point(prev) {
                        break;
                    }
                    slot -= 1;
                }
                // Land directly above the topmost non-movable crossed.
                if let Some(target) = (slot..i).find(|&s| !movable(&b.instrs[s])) {
                    let ins = b.instrs.remove(i);
                    b.instrs.insert(target, ins);
                    moves += 1;
                }
            }
            i += 1;
        }
    }
    moves
}

fn movable(ins: &Instr) -> bool {
    matches!(
        ins,
        Instr::Bin { .. } | Instr::Const { .. } | Instr::FrameAddr { .. } | Instr::Mov { .. }
    )
}

fn is_ordering_point(ins: &Instr) -> bool {
    // KeepLive/CheckSame pin the schedule (the paper's "explicit program
    // point"); terminators end blocks.
    matches!(ins, Instr::KeepLive { .. } | Instr::CheckSame { .. }) || ins.is_terminator()
}
