//! Strength reduction on address arithmetic.
//!
//! Classic induction-variable reduction restricted to the address shape
//! the paper cares about: a loop that computes `addr = base + j*s` from
//! a basic induction variable `j = j ± c` is rewritten to maintain a
//! running pointer instead. Only chains containing a real multiply are
//! reduced — unit-width indexing reaches this pass as a shift (courtesy
//! of const_fold), and a shift is as cheap as the replacement add on
//! every machine model, so reducing it would trade nothing for a
//! loop-long pointer live range (register pressure, spills). Stride
//! indexing (`a[i*3]`) keeps its multiply and is the shape that wins:
//!
//! ```text
//! preheader:  tm  = j * s
//!             ptr = base + tm
//! loop:       addr = mov ptr          (replaces base + j*s)
//!             …
//!             j   = j + c
//!             ptr = ptr + c*s         (immediately after the increment)
//! ```
//!
//! The multiply leaves the loop entirely (dce retires it once its only
//! use is gone), which is the cycle win. The hazard is the point: `ptr`
//! is a *manufactured interior pointer* — after the transformation the
//! loop may hold no direct copy of `base` at all, only a pointer into
//! the middle of the object, live across every allocation call in the
//! body. The conservative collector must recognise interior pointers
//! (`g`/`g-checked`), and the annotated builds rely on the annotator's
//! `KeepLive` base threading having pinned `base` *before* this pass ran.
//!
//! Soundness of the placement: the pointer increment is inserted
//! immediately after the unique in-loop increment of `j`, so the
//! invariant `ptr == base + j*s` holds at every instruction of the loop
//! except between those two adjacent instructions — in particular at the
//! replaced address computation. The scheduler cannot re-order a use of
//! `ptr` across the increment (anti-dependence) and is block-local, so
//! the invariant survives later sweeps.

use super::cfg::{back_edges, dominators, loop_blocks};
use super::count_uses;
use crate::ir::*;
use crate::liveness::Liveness;
use std::collections::{BTreeMap, HashMap};

/// Runs induction-variable strength reduction on address arithmetic;
/// returns the number of `base + j*s` computations reduced.
pub fn strength_reduce(f: &mut FuncIr) -> usize {
    let dom = dominators(f);
    // Group latches by header: a header with several back edges
    // (`continue` statements) has the union of their natural loops as
    // its body, and per-latch views would miscount in-loop definitions.
    let mut loops: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (latch, header) in back_edges(f, &dom) {
        if header == 0 {
            continue; // entry block cannot take a preheader safely
        }
        loops.entry(header).or_default().push(latch);
    }
    let mut fires = 0usize;
    for (header, latches) in loops {
        // Re-scan per loop: reducing one loop appends a preheader block
        // and shifts instruction indices, so candidate positions must be
        // fresh. Block ids of existing blocks never change, so the
        // header/latch ids collected above stay valid.
        fires += reduce_loop(f, header, &latches);
    }
    fires
}

struct Candidate {
    /// Position of `addr = base + m` (replaced with `addr = mov ptr`).
    /// The matched `m = j*s` stays put: once its only use is gone, dce
    /// retires it.
    add: (usize, usize),
    addr: Temp,
    /// The scale instruction, re-emitted in the preheader.
    scale_op: BinIr,
    scale: i64,
    j: Temp,
    /// Position of the unique in-loop `j = j ± c`.
    inc: (usize, usize),
    /// `ptr` advances by this per iteration: `±c * s` (or `±c << k`).
    delta: i64,
    base: Operand,
}

fn reduce_loop(f: &mut FuncIr, header: usize, latches: &[usize]) -> usize {
    let mut in_loop = vec![false; f.blocks.len()];
    for &latch in latches {
        for bi in loop_blocks(f, latch, header) {
            in_loop[bi] = true;
        }
    }
    let blocks: Vec<usize> = (0..f.blocks.len()).filter(|&b| in_loop[b]).collect();
    let mut defs_in_loop: HashMap<Temp, usize> = HashMap::new();
    for &bi in &blocks {
        for ins in &f.blocks[bi].instrs {
            if let Some(d) = ins.dst() {
                *defs_in_loop.entry(d).or_insert(0) += 1;
            }
        }
    }
    let in_loop_defs = |t: Temp| defs_in_loop.get(&t).copied().unwrap_or(0);
    let invariant = |o: Operand| match o {
        Operand::Temp(t) => in_loop_defs(t) == 0,
        Operand::Const(_) => true,
    };
    let uses = count_uses(f);
    let lv = Liveness::compute(f);
    // Basic induction variables, keyed by j; the position recorded is
    // the instruction after which j holds its advanced value. Two forms:
    //
    // * `j = j ± c` in one instruction (hand-written IR, post-copy-prop
    //   shapes);
    // * the split form lowering actually emits for loop variables —
    //   `tmp = j ± c` followed by `j = mov tmp` (the mov is j's unique
    //   in-loop def; the non-SSA loop temp cannot be copy-propagated
    //   away). The pointer increment must anchor on the *mov*: between
    //   the add and the mov, j still holds the pre-increment value.
    let mut ivs: HashMap<Temp, ((usize, usize), i64)> = HashMap::new();
    // `tmp = j ± c` adds seen per temp: tmp -> (j, step).
    let mut stepped: HashMap<Temp, (Temp, i64)> = HashMap::new();
    for &bi in &blocks {
        for (ii, ins) in f.blocks[bi].instrs.iter().enumerate() {
            match ins {
                Instr::Bin { dst, op, a, b } => {
                    let step = match (op, a, b) {
                        (BinIr::Add, Operand::Temp(t), Operand::Const(c)) => Some((*t, *c)),
                        (BinIr::Add, Operand::Const(c), Operand::Temp(t)) => Some((*t, *c)),
                        (BinIr::Sub, Operand::Temp(t), Operand::Const(c)) => {
                            Some((*t, c.wrapping_neg()))
                        }
                        _ => None,
                    };
                    if let Some((t, c)) = step {
                        if t == *dst && in_loop_defs(*dst) == 1 {
                            ivs.insert(*dst, ((bi, ii), c));
                        } else if in_loop_defs(*dst) == 1 {
                            stepped.insert(*dst, (t, c));
                        }
                    }
                }
                Instr::Mov {
                    dst,
                    src: Operand::Temp(t),
                } => {
                    if let Some(&(j, c)) = stepped.get(t) {
                        if j == *dst && in_loop_defs(*dst) == 1 {
                            ivs.insert(*dst, ((bi, ii), c));
                        }
                    }
                }
                _ => {}
            }
        }
    }
    if ivs.is_empty() {
        return 0;
    }
    // Derived scaled values m = j*s / j<<k: single in-loop def, single
    // global use, fresh each iteration. Array indexing with an explicit
    // stride lowers to a two-level chain — `m1 = j*stride; m2 = m1*width`
    // (either level may reach us as a shift) — so a scaled value is also
    // recognised through one single-use intermediate, with the two
    // constant factors combined into one multiplier.
    struct Scaled {
        /// Position of the *last* instruction of the chain (feeds the add).
        pos: (usize, usize),
        /// Position of the *first* instruction of the chain — the
        /// increment-ordering guard must cover the whole chain.
        chain_start: (usize, usize),
        j: Temp,
        op: BinIr,
        scale: i64,
        inc: (usize, usize),
        delta: i64,
    }
    // Effective constant multiplier of one Mul/Shl-by-constant level.
    let factor = |op: BinIr, c: i64| -> Option<i64> {
        match op {
            BinIr::Mul => Some(c),
            BinIr::Shl if (0..64).contains(&c) => Some(1i64.wrapping_shl(c as u32)),
            _ => None,
        }
    };
    let as_scale = |ins: &Instr| -> Option<(Temp, Temp, i64, bool)> {
        let Instr::Bin { dst, op, a, b } = ins else {
            return None;
        };
        let (t, c) = match (a, b) {
            (Operand::Temp(t), Operand::Const(c)) => (*t, *c),
            (Operand::Const(c), Operand::Temp(t)) if *op == BinIr::Mul => (*t, *c),
            _ => return None,
        };
        Some((*dst, t, factor(*op, c)?, *op == BinIr::Mul))
    };
    let mut scaled: HashMap<Temp, Scaled> = HashMap::new();
    for &bi in &blocks {
        for (ii, ins) in f.blocks[bi].instrs.iter().enumerate() {
            let Some((dst, src, outer, outer_mul)) = as_scale(ins) else {
                continue;
            };
            // Either `src` is the induction variable itself, or it is a
            // single-use scale of the IV earlier in this block. At least
            // one chain level must be an actual multiply: eliminating a
            // shift (alu-priced on every machine model) buys nothing,
            // while the manufactured pointer is live across the whole
            // loop — pure register pressure. A multiply reaching this
            // pass has a non-power-of-two constant (const_fold already
            // turned the rest into shifts), so the eliminated op is a
            // real multiply and the reduction is a genuine cycle win.
            let (j, mult, chain_start) = if ivs.contains_key(&src) {
                if !outer_mul {
                    continue;
                }
                (src, outer, (bi, ii))
            } else {
                let Some(inner) =
                    f.blocks[bi].instrs[..ii]
                        .iter()
                        .enumerate()
                        .find_map(|(pi, pins)| match as_scale(pins) {
                            Some((d, t, m, im)) if d == src => Some((pi, t, m, im)),
                            _ => None,
                        })
                else {
                    continue;
                };
                let (pi, t, m, inner_mul) = inner;
                if !(inner_mul || outer_mul)
                    || !ivs.contains_key(&t)
                    || in_loop_defs(src) != 1
                    || uses.get(&src).copied().unwrap_or(0) != 1
                    || lv.live_in[header].contains(src)
                {
                    continue;
                }
                (t, m.wrapping_mul(outer), (bi, pi))
            };
            let Some(&(inc, step)) = ivs.get(&j) else {
                continue;
            };
            if dst == j
                || in_loop_defs(dst) != 1
                || uses.get(&dst).copied().unwrap_or(0) != 1
                || lv.live_in[header].contains(dst)
            {
                continue;
            }
            scaled.insert(
                dst,
                Scaled {
                    pos: (bi, ii),
                    chain_start,
                    j,
                    op: BinIr::Mul,
                    scale: mult,
                    inc,
                    delta: step.wrapping_mul(mult),
                },
            );
        }
    }
    if scaled.is_empty() {
        return 0;
    }
    // The unique use must be `addr = base + m` with an invariant base.
    let mut cands: Vec<Candidate> = Vec::new();
    for &bi in &blocks {
        for (ii, ins) in f.blocks[bi].instrs.iter().enumerate() {
            let Instr::Bin {
                dst,
                op: BinIr::Add,
                a,
                b,
            } = ins
            else {
                continue;
            };
            let (m, base) = match (a, b) {
                (Operand::Temp(t), other) if scaled.contains_key(t) => (*t, *other),
                (other, Operand::Temp(t)) if scaled.contains_key(t) => (*t, *other),
                _ => continue,
            };
            if !invariant(base)
                || base.as_temp() == Some(*dst)
                || *dst == m
                || in_loop_defs(*dst) != 1
                || lv.live_in[header].contains(*dst)
            {
                continue;
            }
            let s = &scaled[&m];
            if *dst == s.j {
                continue;
            }
            // The scale chain must feed the add in straight-line order
            // with no increment of j in between: otherwise the original
            // address reflects the pre-increment j while `ptr` has
            // already advanced. Lowered indexing always emits the chain
            // adjacent in one block, so this rejects nothing real.
            if s.pos.0 != bi || s.pos.1 >= ii {
                continue;
            }
            if s.inc.0 == bi && s.chain_start.1 < s.inc.1 && s.inc.1 < ii {
                continue;
            }
            cands.push(Candidate {
                add: (bi, ii),
                addr: *dst,
                scale_op: s.op,
                scale: s.scale,
                j: s.j,
                inc: s.inc,
                delta: s.delta,
                base,
            });
            // `m` has exactly one use, so it cannot match again.
            scaled.remove(&m);
        }
    }
    if cands.is_empty() {
        return 0;
    }
    cands.sort_by_key(|c| c.add);
    // Apply: replacements first (positions stay valid), then pointer
    // increments back-to-front (insertions shift later indices), then
    // the preheader.
    let mut pre: Vec<Instr> = Vec::new();
    let mut inserts: Vec<(usize, usize, Instr)> = Vec::new();
    let mut next_temp = f.temp_count;
    for c in &cands {
        let tm = Temp(next_temp);
        let ptr = Temp(next_temp + 1);
        next_temp += 2;
        pre.push(Instr::Bin {
            dst: tm,
            op: c.scale_op,
            a: Operand::Temp(c.j),
            b: Operand::Const(c.scale),
        });
        pre.push(Instr::Bin {
            dst: ptr,
            op: BinIr::Add,
            a: c.base,
            b: Operand::Temp(tm),
        });
        f.blocks[c.add.0].instrs[c.add.1] = Instr::Mov {
            dst: c.addr,
            src: Operand::Temp(ptr),
        };
        // The multiply at c.mul now computes an unused temp; dce takes it.
        inserts.push((
            c.inc.0,
            c.inc.1,
            Instr::Bin {
                dst: ptr,
                op: BinIr::Add,
                a: Operand::Temp(ptr),
                b: Operand::Const(c.delta),
            },
        ));
    }
    f.temp_count = next_temp;
    inserts.sort_by_key(|&(bi, ii, _)| (bi, ii));
    for (bi, ii, ins) in inserts.into_iter().rev() {
        f.blocks[bi].instrs.insert(ii + 1, ins);
    }
    super::cfg::insert_preheader(f, header, |b| in_loop.get(b).copied().unwrap_or(false), pre);
    cands.len()
}
