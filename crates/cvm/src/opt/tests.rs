use super::*;

fn t(n: u32) -> Temp {
    Temp(n)
}

fn func(instrs: Vec<Instr>, temp_count: u32) -> FuncIr {
    FuncIr {
        name: "test".into(),
        blocks: vec![Block { instrs }],
        temp_count,
        param_temps: vec![],
        frame_size: 0,
        returns_value: true,
    }
}

#[test]
fn const_fold_arithmetic() {
    let mut f = func(
        vec![
            Instr::Const {
                dst: t(0),
                value: 6,
            },
            Instr::Const {
                dst: t(1),
                value: 7,
            },
            Instr::Bin {
                dst: t(2),
                op: BinIr::Mul,
                a: t(0).into(),
                b: t(1).into(),
            },
            Instr::Ret {
                value: Some(t(2).into()),
            },
        ],
        3,
    );
    copy_prop(&mut f);
    const_fold(&mut f);
    copy_prop(&mut f);
    dce(&mut f);
    assert_eq!(
        f.blocks[0].instrs,
        vec![Instr::Ret {
            value: Some(Operand::Const(42))
        }]
    );
}

#[test]
fn mul_by_power_of_two_becomes_shift() {
    let mut f = func(
        vec![
            Instr::Bin {
                dst: t(1),
                op: BinIr::Mul,
                a: t(0).into(),
                b: Operand::Const(8),
            },
            Instr::Ret {
                value: Some(t(1).into()),
            },
        ],
        2,
    );
    const_fold(&mut f);
    assert!(matches!(
        f.blocks[0].instrs[0],
        Instr::Bin {
            op: BinIr::Shl,
            b: Operand::Const(3),
            ..
        }
    ));
}

#[test]
fn cse_merges_repeated_address_computation() {
    let mut f = func(
        vec![
            Instr::Bin {
                dst: t(1),
                op: BinIr::Add,
                a: t(0).into(),
                b: Operand::Const(8),
            },
            Instr::Bin {
                dst: t(2),
                op: BinIr::Add,
                a: t(0).into(),
                b: Operand::Const(8),
            },
            Instr::Bin {
                dst: t(3),
                op: BinIr::Add,
                a: t(1).into(),
                b: t(2).into(),
            },
            Instr::Ret {
                value: Some(t(3).into()),
            },
        ],
        4,
    );
    cse(&mut f);
    copy_prop(&mut f);
    dce(&mut f);
    let adds = f.blocks[0]
        .instrs
        .iter()
        .filter(|i| {
            matches!(
                i,
                Instr::Bin {
                    op: BinIr::Add,
                    b: Operand::Const(8),
                    ..
                }
            )
        })
        .count();
    assert_eq!(adds, 1, "duplicate add folded: {:?}", f.blocks[0].instrs);
}

#[test]
fn redundant_load_removed_until_store() {
    let mut f = func(
        vec![
            Instr::Load {
                dst: t(1),
                addr: t(0).into(),
                width: 8,
                signed: false,
            },
            Instr::Load {
                dst: t(2),
                addr: t(0).into(),
                width: 8,
                signed: false,
            },
            Instr::Store {
                addr: t(0).into(),
                value: Operand::Const(1),
                width: 8,
            },
            Instr::Load {
                dst: t(3),
                addr: t(0).into(),
                width: 8,
                signed: false,
            },
            Instr::Bin {
                dst: t(4),
                op: BinIr::Add,
                a: t(1).into(),
                b: t(2).into(),
            },
            Instr::Bin {
                dst: t(5),
                op: BinIr::Add,
                a: t(4).into(),
                b: t(3).into(),
            },
            Instr::Ret {
                value: Some(t(5).into()),
            },
        ],
        6,
    );
    cse(&mut f);
    let load_count = f.blocks[0]
        .instrs
        .iter()
        .filter(|i| matches!(i, Instr::Load { .. }))
        .count();
    assert_eq!(load_count, 2, "second load folded, post-store load kept");
}

#[test]
fn dce_removes_dead_but_keeps_side_effects() {
    let mut f = func(
        vec![
            Instr::Const {
                dst: t(0),
                value: 1,
            },
            Instr::Const {
                dst: t(1),
                value: 2,
            },
            Instr::Store {
                addr: Operand::Const(0x10000),
                value: t(1).into(),
                width: 8,
            },
            Instr::Ret { value: None },
        ],
        2,
    );
    dce(&mut f);
    assert_eq!(
        f.blocks[0].instrs.len(),
        3,
        "dead const removed, store kept"
    );
}

#[test]
fn dead_keep_live_is_removable() {
    let mut f = func(
        vec![
            Instr::KeepLive {
                dst: t(1),
                value: t(0).into(),
                base: None,
            },
            Instr::Ret { value: None },
        ],
        2,
    );
    dce(&mut f);
    assert_eq!(f.blocks[0].instrs.len(), 1);
}

#[test]
fn reassociate_creates_displaced_base() {
    // t1 = i - 1000 ; t2 = p + t1  →  t3 = p - 1000 ; t2 = t3 + i
    let mut f = func(
        vec![
            Instr::Bin {
                dst: t(2),
                op: BinIr::Sub,
                a: t(1).into(),
                b: Operand::Const(1000),
            },
            Instr::Bin {
                dst: t(3),
                op: BinIr::Add,
                a: t(0).into(),
                b: t(2).into(),
            },
            Instr::Ret {
                value: Some(t(3).into()),
            },
        ],
        4,
    );
    reassociate(&mut f);
    let dump = f.dump();
    assert!(
        dump.contains("Sub(t0, 1000)"),
        "displaced base created:\n{dump}"
    );
}

#[test]
fn schedule_hoists_arithmetic_above_calls() {
    let mut f = func(
        vec![
            Instr::Bin {
                dst: t(1),
                op: BinIr::Sub,
                a: t(0).into(),
                b: Operand::Const(4),
            },
            Instr::Call {
                dst: Some(t(2)),
                target: CallTarget::Builtin(cfront::Builtin::Malloc),
                args: vec![Operand::Const(8)],
                site: None,
            },
            Instr::Bin {
                dst: t(3),
                op: BinIr::Add,
                a: t(1).into(),
                b: Operand::Const(1),
            },
            Instr::Ret {
                value: Some(t(3).into()),
            },
        ],
        4,
    );
    schedule_early(&mut f);
    // The add depending only on t1 moves above the call.
    assert!(matches!(
        f.blocks[0].instrs[1],
        Instr::Bin { op: BinIr::Add, .. }
    ));
    assert!(matches!(f.blocks[0].instrs[2], Instr::Call { .. }));
}

#[test]
fn schedule_respects_keep_live_ordering() {
    let mut f = func(
        vec![
            Instr::KeepLive {
                dst: t(1),
                value: t(0).into(),
                base: Some(t(0).into()),
            },
            Instr::Call {
                dst: Some(t(2)),
                target: CallTarget::Builtin(cfront::Builtin::Malloc),
                args: vec![Operand::Const(8)],
                site: None,
            },
            Instr::Bin {
                dst: t(3),
                op: BinIr::Add,
                a: t(1).into(),
                b: Operand::Const(1),
            },
            Instr::Ret {
                value: Some(t(3).into()),
            },
        ],
        4,
    );
    schedule_early(&mut f);
    // t3's add uses t1 (the keep_live result): it may hoist above the
    // call but never above the keep_live.
    let kl_pos = f.blocks[0]
        .instrs
        .iter()
        .position(|i| matches!(i, Instr::KeepLive { .. }))
        .expect("keep_live kept");
    let add_pos = f.blocks[0]
        .instrs
        .iter()
        .position(|i| matches!(i, Instr::Bin { op: BinIr::Add, .. }))
        .expect("add kept");
    assert!(add_pos > kl_pos);
}

#[test]
fn copy_prop_through_chain() {
    let mut f = func(
        vec![
            Instr::Const {
                dst: t(0),
                value: 5,
            },
            Instr::Mov {
                dst: t(1),
                src: t(0).into(),
            },
            Instr::Mov {
                dst: t(2),
                src: t(1).into(),
            },
            Instr::Ret {
                value: Some(t(2).into()),
            },
        ],
        3,
    );
    copy_prop(&mut f);
    dce(&mut f);
    assert_eq!(
        f.blocks[0].instrs,
        vec![Instr::Ret {
            value: Some(Operand::Const(5))
        }]
    );
}

#[test]
fn optimizer_never_folds_through_keep_live() {
    // t1 = keeplive(7); t2 = t1 + 1 — t2 must not become Const(8).
    let mut f = func(
        vec![
            Instr::KeepLive {
                dst: t(1),
                value: Operand::Const(7),
                base: None,
            },
            Instr::Bin {
                dst: t(2),
                op: BinIr::Add,
                a: t(1).into(),
                b: Operand::Const(1),
            },
            Instr::Ret {
                value: Some(t(2).into()),
            },
        ],
        3,
    );
    optimize_func(&mut f, OptOptions::full());
    let dump = f.dump();
    assert!(dump.contains("keep_live"), "keep_live survives: {dump}");
    assert!(
        !dump.contains("ret 8"),
        "no folding through the barrier: {dump}"
    );
}

#[test]
fn registry_names_are_unique_and_ledger_matches() {
    let names = pass_names();
    let mut sorted = names.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), names.len(), "duplicate pass name registered");
    let mut f = func(vec![Instr::Ret { value: None }], 0);
    let ledger = optimize_func_ledger(&mut f, OptOptions::full());
    assert_eq!(
        ledger.fires.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
        names,
        "ledger rows follow registry order"
    );
    assert!(ledger.sweeps >= 1);
}

#[test]
fn disabled_passes_never_fire() {
    let mut opts = OptOptions::full();
    opts.gvn = false;
    opts.sccp = false;
    opts.dse = false;
    opts.strength = false;
    // A shape every gated pass would fire on: a dead store pair plus a
    // branch-constant condition.
    let mut f = func(
        vec![
            Instr::Store {
                addr: t(0).into(),
                value: Operand::Const(1),
                width: 8,
            },
            Instr::Store {
                addr: t(0).into(),
                value: Operand::Const(2),
                width: 8,
            },
            Instr::Ret { value: None },
        ],
        1,
    );
    let ledger = optimize_func_ledger(&mut f, opts);
    for pass in ["gvn", "sccp", "dse", "strength"] {
        assert_eq!(ledger.fires_for(pass), 0, "{pass} fired while disabled");
    }
    assert_eq!(
        f.blocks[0].instrs.len(),
        3,
        "dead store survives with dse off"
    );
}

#[test]
fn driver_reaches_fixpoint_and_is_idempotent() {
    // A little bit of everything: constants to fold, a dead store, and a
    // redundant add.
    let instrs = vec![
        Instr::Const {
            dst: t(1),
            value: 6,
        },
        Instr::Bin {
            dst: t(2),
            op: BinIr::Mul,
            a: t(1).into(),
            b: Operand::Const(7),
        },
        Instr::Store {
            addr: t(0).into(),
            value: t(2).into(),
            width: 8,
        },
        Instr::Store {
            addr: t(0).into(),
            value: Operand::Const(0),
            width: 8,
        },
        Instr::Ret {
            value: Some(t(2).into()),
        },
    ];
    let mut f = func(instrs, 3);
    let first = optimize_func_ledger(&mut f, OptOptions::full());
    assert!(first.sweeps < FIXPOINT_SWEEP_CAP, "driver converged");
    let second = optimize_func_ledger(&mut f, OptOptions::full());
    for (pass, fires) in &second.fires {
        assert_eq!(*fires, 0, "{pass} fired on a second driver run");
    }
    assert_eq!(second.sweeps, 1);
}

mod gvn_tests {
    use super::*;

    /// bb0: t1 = t0 + 8; br t0 ? bb1 : bb2
    /// bb1: t2 = t0 + 8; ret t2   (same value, dominated by bb0)
    /// bb2: ret t1
    #[test]
    fn merges_recomputation_across_blocks() {
        let mut f = FuncIr {
            name: "g".into(),
            blocks: vec![
                Block {
                    instrs: vec![
                        Instr::Bin {
                            dst: t(1),
                            op: BinIr::Add,
                            a: t(0).into(),
                            b: Operand::Const(8),
                        },
                        Instr::Branch {
                            cond: t(0).into(),
                            if_true: BlockId(1),
                            if_false: BlockId(2),
                        },
                    ],
                },
                Block {
                    instrs: vec![
                        Instr::Bin {
                            dst: t(2),
                            op: BinIr::Add,
                            a: t(0).into(),
                            b: Operand::Const(8),
                        },
                        Instr::Ret {
                            value: Some(t(2).into()),
                        },
                    ],
                },
                Block {
                    instrs: vec![Instr::Ret {
                        value: Some(t(1).into()),
                    }],
                },
            ],
            temp_count: 3,
            param_temps: vec![t(0)],
            frame_size: 0,
            returns_value: true,
        };
        assert_eq!(gvn(&mut f), 1);
        assert!(
            matches!(
                f.blocks[1].instrs[0],
                Instr::Mov {
                    dst: Temp(2),
                    src: Operand::Temp(Temp(1))
                }
            ),
            "recomputation became a copy:\n{}",
            f.dump()
        );
        // Second run finds nothing.
        assert_eq!(gvn(&mut f), 0);
    }

    #[test]
    fn commutative_operands_share_a_value() {
        let mut f = func(
            vec![
                Instr::Bin {
                    dst: t(2),
                    op: BinIr::Add,
                    a: t(0).into(),
                    b: t(1).into(),
                },
                Instr::Bin {
                    dst: t(3),
                    op: BinIr::Add,
                    a: t(1).into(),
                    b: t(0).into(),
                },
                Instr::Bin {
                    dst: t(4),
                    op: BinIr::Add,
                    a: t(2).into(),
                    b: t(3).into(),
                },
                Instr::Ret {
                    value: Some(t(4).into()),
                },
            ],
            5,
        );
        assert_eq!(gvn(&mut f), 1, "{}", f.dump());
    }

    #[test]
    fn redefined_temps_never_merge() {
        // t1 is redefined between the two computations: no merge.
        let mut f = func(
            vec![
                Instr::Bin {
                    dst: t(2),
                    op: BinIr::Add,
                    a: t(1).into(),
                    b: Operand::Const(8),
                },
                Instr::Const {
                    dst: t(1),
                    value: 3,
                },
                Instr::Bin {
                    dst: t(3),
                    op: BinIr::Add,
                    a: t(1).into(),
                    b: Operand::Const(8),
                },
                Instr::Bin {
                    dst: t(4),
                    op: BinIr::Add,
                    a: t(2).into(),
                    b: t(3).into(),
                },
                Instr::Ret {
                    value: Some(t(4).into()),
                },
            ],
            5,
        );
        assert_eq!(gvn(&mut f), 0, "{}", f.dump());
    }
}

mod sccp_tests {
    use super::*;

    /// bb0: t0 = 1; br t0 ? bb1 : bb2
    /// bb1: t1 = 5; jump bb3
    /// bb2: t1 = 9; jump bb3    (unreachable once the branch folds)
    /// bb3: t2 = t1 + 1; ret t2
    fn diamond() -> FuncIr {
        FuncIr {
            name: "s".into(),
            blocks: vec![
                Block {
                    instrs: vec![
                        Instr::Const {
                            dst: t(0),
                            value: 1,
                        },
                        Instr::Branch {
                            cond: t(0).into(),
                            if_true: BlockId(1),
                            if_false: BlockId(2),
                        },
                    ],
                },
                Block {
                    instrs: vec![
                        Instr::Const {
                            dst: t(1),
                            value: 5,
                        },
                        Instr::Jump { target: BlockId(3) },
                    ],
                },
                Block {
                    instrs: vec![
                        Instr::Const {
                            dst: t(1),
                            value: 9,
                        },
                        Instr::Jump { target: BlockId(3) },
                    ],
                },
                Block {
                    instrs: vec![
                        Instr::Bin {
                            dst: t(2),
                            op: BinIr::Add,
                            a: t(1).into(),
                            b: Operand::Const(1),
                        },
                        Instr::Ret {
                            value: Some(t(2).into()),
                        },
                    ],
                },
            ],
            temp_count: 3,
            param_temps: vec![],
            frame_size: 0,
            returns_value: true,
        }
    }

    #[test]
    fn constants_flow_through_taken_edges_only() {
        // Plain per-def reasoning would join {5, 9} to varying; SCCP sees
        // bb2 is unreachable and folds t1 to 5.
        let mut f = diamond();
        let fires = sccp(&mut f);
        assert!(fires > 0, "{}", f.dump());
        assert!(
            matches!(
                f.blocks[3].instrs[0],
                Instr::Bin {
                    a: Operand::Const(5),
                    ..
                }
            ),
            "merge-point use folded to the reachable constant:\n{}",
            f.dump()
        );
    }

    #[test]
    fn varying_merges_do_not_fold() {
        let mut f = diamond();
        // Make the branch genuinely two-way: cond becomes a param.
        f.blocks[0].instrs = vec![Instr::Branch {
            cond: t(0).into(),
            if_true: BlockId(1),
            if_false: BlockId(2),
        }];
        f.param_temps = vec![t(0)];
        sccp(&mut f);
        assert!(
            matches!(
                f.blocks[3].instrs[0],
                Instr::Bin {
                    a: Operand::Temp(Temp(1)),
                    ..
                }
            ),
            "two reachable constants stay a temp:\n{}",
            f.dump()
        );
    }

    #[test]
    fn keep_live_results_stay_opaque() {
        let mut f = func(
            vec![
                Instr::KeepLive {
                    dst: t(0),
                    value: Operand::Const(7),
                    base: None,
                },
                Instr::Bin {
                    dst: t(1),
                    op: BinIr::Add,
                    a: t(0).into(),
                    b: Operand::Const(1),
                },
                Instr::Ret {
                    value: Some(t(1).into()),
                },
            ],
            2,
        );
        assert_eq!(sccp(&mut f), 0, "{}", f.dump());
    }
}

mod dse_tests {
    use super::*;

    #[test]
    fn overwritten_store_is_removed() {
        let mut f = func(
            vec![
                Instr::Store {
                    addr: t(0).into(),
                    value: Operand::Const(1),
                    width: 8,
                },
                Instr::Store {
                    addr: t(0).into(),
                    value: Operand::Const(2),
                    width: 8,
                },
                Instr::Ret { value: None },
            ],
            1,
        );
        assert_eq!(dse(&mut f), 1);
        assert!(matches!(
            f.blocks[0].instrs[0],
            Instr::Store {
                value: Operand::Const(2),
                ..
            }
        ));
    }

    #[test]
    fn call_is_a_collection_point_barrier() {
        // The call between the stores may collect — the first store could
        // be what makes a pointer findable, so it must survive.
        let mut f = func(
            vec![
                Instr::Store {
                    addr: t(0).into(),
                    value: t(1).into(),
                    width: 8,
                },
                Instr::Call {
                    dst: Some(t(2)),
                    target: CallTarget::Builtin(cfront::Builtin::Malloc),
                    args: vec![Operand::Const(8)],
                    site: None,
                },
                Instr::Store {
                    addr: t(0).into(),
                    value: t(2).into(),
                    width: 8,
                },
                Instr::Ret { value: None },
            ],
            3,
        );
        assert_eq!(dse(&mut f), 0, "{}", f.dump());
    }

    #[test]
    fn load_between_stores_blocks_elimination() {
        let mut f = func(
            vec![
                Instr::Store {
                    addr: t(0).into(),
                    value: Operand::Const(1),
                    width: 8,
                },
                Instr::Load {
                    dst: t(1),
                    addr: t(0).into(),
                    width: 8,
                    signed: false,
                },
                Instr::Store {
                    addr: t(0).into(),
                    value: t(1).into(),
                    width: 8,
                },
                Instr::Ret { value: None },
            ],
            2,
        );
        assert_eq!(dse(&mut f), 0);
    }

    #[test]
    fn narrower_overwrite_keeps_the_wide_store() {
        let mut f = func(
            vec![
                Instr::Store {
                    addr: t(0).into(),
                    value: Operand::Const(1),
                    width: 8,
                },
                Instr::Store {
                    addr: t(0).into(),
                    value: Operand::Const(2),
                    width: 1,
                },
                Instr::Ret { value: None },
            ],
            1,
        );
        assert_eq!(dse(&mut f), 0, "bytes 1..8 still observable");
    }

    #[test]
    fn redefined_address_blocks_elimination() {
        let mut f = func(
            vec![
                Instr::Store {
                    addr: t(0).into(),
                    value: Operand::Const(1),
                    width: 8,
                },
                Instr::Bin {
                    dst: t(0),
                    op: BinIr::Add,
                    a: t(0).into(),
                    b: Operand::Const(8),
                },
                Instr::Store {
                    addr: t(0).into(),
                    value: Operand::Const(2),
                    width: 8,
                },
                Instr::Ret { value: None },
            ],
            1,
        );
        assert_eq!(dse(&mut f), 0, "same temp, different address");
    }
}

mod strength_tests {
    use super::*;

    /// bb0: t1 = 0; jump bb1
    /// bb1: t2 = t1 * 8; t3 = t0 + t2; t4 = load t3; t1 = t1 + 1;
    ///      t5 = t1 < 10; br t5 ? bb1 : bb2
    /// bb2: ret t4
    fn indexed_loop(scale_op: BinIr, scale: i64) -> FuncIr {
        FuncIr {
            name: "sr".into(),
            blocks: vec![
                Block {
                    instrs: vec![
                        Instr::Const {
                            dst: t(1),
                            value: 0,
                        },
                        Instr::Jump { target: BlockId(1) },
                    ],
                },
                Block {
                    instrs: vec![
                        Instr::Bin {
                            dst: t(2),
                            op: scale_op,
                            a: t(1).into(),
                            b: Operand::Const(scale),
                        },
                        Instr::Bin {
                            dst: t(3),
                            op: BinIr::Add,
                            a: t(0).into(),
                            b: t(2).into(),
                        },
                        Instr::Load {
                            dst: t(4),
                            addr: t(3).into(),
                            width: 8,
                            signed: false,
                        },
                        Instr::Bin {
                            dst: t(1),
                            op: BinIr::Add,
                            a: t(1).into(),
                            b: Operand::Const(1),
                        },
                        Instr::Bin {
                            dst: t(5),
                            op: BinIr::CmpLt,
                            a: t(1).into(),
                            b: Operand::Const(10),
                        },
                        Instr::Branch {
                            cond: t(5).into(),
                            if_true: BlockId(1),
                            if_false: BlockId(2),
                        },
                    ],
                },
                Block {
                    instrs: vec![Instr::Ret {
                        value: Some(t(4).into()),
                    }],
                },
            ],
            temp_count: 6,
            param_temps: vec![t(0)],
            frame_size: 0,
            returns_value: true,
        }
    }

    #[test]
    fn reduces_scaled_index_to_pointer_increment() {
        let mut f = indexed_loop(BinIr::Mul, 8);
        assert_eq!(strength_reduce(&mut f), 1, "{}", f.dump());
        // A preheader block appeared, entered from bb0.
        assert_eq!(f.blocks.len(), 4, "{}", f.dump());
        assert_eq!(f.blocks[0].successors(), vec![BlockId(3)]);
        // The address computation is now a copy of the running pointer,
        // and a pointer increment by 8 follows the IV increment.
        let body = &f.blocks[1].instrs;
        assert!(
            body.iter()
                .any(|i| matches!(i, Instr::Mov { dst: Temp(3), .. })),
            "address became a copy:\n{}",
            f.dump()
        );
        assert!(
            body.iter().any(|i| matches!(
                i,
                Instr::Bin {
                    op: BinIr::Add,
                    b: Operand::Const(8),
                    ..
                }
            )),
            "pointer increment inserted:\n{}",
            f.dump()
        );
        // dce retires the multiply once its only use is gone.
        dce(&mut f);
        assert!(
            !f.blocks[1]
                .instrs
                .iter()
                .any(|i| matches!(i, Instr::Bin { op: BinIr::Mul, .. })),
            "multiply left the loop:\n{}",
            f.dump()
        );
        // Idempotent: the matched multiply is gone.
        assert_eq!(strength_reduce(&mut f), 0);
    }

    #[test]
    fn shift_only_chain_is_not_reduced() {
        // const_fold turns `i*8` into `i<<3` before this pass runs on
        // real programs. A shift is as cheap as the add that would
        // replace it, so reducing a shift-only chain would buy nothing
        // and cost a loop-long pointer live range — the pass must leave
        // it alone.
        let mut f = indexed_loop(BinIr::Shl, 3);
        assert_eq!(strength_reduce(&mut f), 0, "{}", f.dump());
    }

    #[test]
    fn reduces_two_level_stride_chain() {
        // `a[i * 3]` on a long array lowers to `m1 = i*3; m2 = m1<<3;
        // addr = a + m2` — the chain must reduce with combined scale 24.
        let mut f = indexed_loop(BinIr::Mul, 3);
        f.blocks[1].instrs.insert(
            1,
            Instr::Bin {
                dst: t(6),
                op: BinIr::Shl,
                a: t(2).into(),
                b: Operand::Const(3),
            },
        );
        f.temp_count = 7;
        // Retarget the add at the outer scale.
        let Instr::Bin { b, .. } = &mut f.blocks[1].instrs[2] else {
            panic!()
        };
        *b = t(6).into();
        assert_eq!(strength_reduce(&mut f), 1, "{}", f.dump());
        assert!(
            f.blocks[1].instrs.iter().any(|i| matches!(
                i,
                Instr::Bin {
                    op: BinIr::Add,
                    b: Operand::Const(24),
                    ..
                }
            )),
            "pointer advances by the combined scale:\n{}",
            f.dump()
        );
        // Both chain levels die once the add is a copy.
        dce(&mut f);
        assert!(
            !f.blocks[1]
                .instrs
                .iter()
                .any(|i| matches!(i, Instr::Bin { op: BinIr::Mul, .. })
                    || matches!(i, Instr::Bin { op: BinIr::Shl, .. })),
            "scale chain left the loop:\n{}",
            f.dump()
        );
    }

    #[test]
    fn variant_base_is_not_reduced() {
        let mut f = indexed_loop(BinIr::Mul, 8);
        // Redefine the base inside the loop: no longer invariant.
        f.blocks[1].instrs.insert(
            3,
            Instr::Bin {
                dst: t(0),
                op: BinIr::Add,
                a: t(0).into(),
                b: Operand::Const(0),
            },
        );
        assert_eq!(strength_reduce(&mut f), 0, "{}", f.dump());
    }

    #[test]
    fn executes_identically_after_reduction() {
        // Run the loop shape through the VM before and after the pass on
        // a frame-backed array and compare the sums.
        use crate::{compile, run_compiled, CompileOptions, VmOptions};
        let src = r#"
            long sum(long *a, long n) {
                long s; long i;
                s = 0;
                for (i = 0; i < n; i++) {
                    s = s + a[i * 2];
                }
                return s;
            }
            int main(void) {
                long a[16]; long i;
                for (i = 0; i < 16; i++) { a[i] = i * 3; }
                putint(sum(a, 8));
                return 0;
            }
        "#;
        let unopt = {
            let prog = compile(src, &CompileOptions::debug()).expect("compiles");
            run_compiled(&prog, &VmOptions::default()).expect("runs")
        };
        let opt = {
            let prog = compile(src, &CompileOptions::optimized()).expect("compiles");
            run_compiled(&prog, &VmOptions::default()).expect("runs")
        };
        assert_eq!(unopt.output, opt.output);
        assert_eq!(unopt.exit_code, opt.exit_code);
    }
}

mod allocation_preservation_tests {
    use super::*;
    use crate::{compile, CompileOptions};

    fn count_mallocs(src: &str, opts: &CompileOptions) -> usize {
        let prog = compile(src, opts).expect("compiles");
        let main = &prog.funcs[prog.main];
        main.blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| {
                matches!(
                    i,
                    Instr::Call {
                        target: CallTarget::Builtin(cfront::Builtin::Malloc),
                        ..
                    }
                )
            })
            .count()
    }

    /// The paper's compiler assumption (0): "Every allocation call in the
    /// source results in a corresponding call to an allocation function in
    /// the object code." Our DCE must never elide a malloc whose result is
    /// unused.
    #[test]
    fn unused_allocation_calls_survive_optimization() {
        let src = r#"
            int main(void) {
                malloc(64);
                (void *) malloc(128);
                return 0;
            }
        "#;
        assert_eq!(count_mallocs(src, &CompileOptions::optimized()), 2);
    }

    /// The same assumption, checked per new pass: each of the second-crop
    /// passes enabled alone must preserve allocation calls whose results
    /// feed stores that die, branches that fold, or addresses that reduce.
    #[test]
    fn each_new_pass_preserves_allocations_alone() {
        let src = r#"
            int main(void) {
                long *p; long *q; long i;
                p = (long *) malloc(64);
                q = (long *) malloc(64);
                p[0] = 1;
                p[0] = 2;           /* dead store */
                if (1) { q[0] = 3; } else { q[0] = 4; }  /* branch-constant */
                for (i = 0; i < 4; i++) { p[i * 2] = i; }  /* induction addr */
                putint(p[0] + q[0]);
                return 0;
            }
        "#;
        for pass in ["gvn", "sccp", "dse", "strength"] {
            let mut opts = CompileOptions::optimized();
            opts.opt.gvn = pass == "gvn";
            opts.opt.sccp = pass == "sccp";
            opts.opt.dse = pass == "dse";
            opts.opt.strength = pass == "strength";
            assert_eq!(
                count_mallocs(src, &opts),
                2,
                "pass {pass} elided an allocation"
            );
        }
    }
}
