//! Small CFG analyses shared by the loop and global passes.

use crate::ir::*;
use std::collections::HashSet;

/// Dominator sets per block (iterative dataflow; CFGs here are tiny).
pub(super) fn dominators(f: &FuncIr) -> Vec<HashSet<usize>> {
    dominators_masked(f, &vec![true; f.blocks.len()])
}

/// [`dominators`] restricted to the subgraph where `mask` holds: masked
/// blocks are ignored as predecessors, so an unreachable edge into a
/// merge point does not dilute the dominators of the reachable path
/// (SCCP queries this with its executable-block set). Masked blocks
/// keep the full set — callers must not query them.
pub(super) fn dominators_masked(f: &FuncIr, mask: &[bool]) -> Vec<HashSet<usize>> {
    let n = f.blocks.len();
    let all: HashSet<usize> = (0..n).collect();
    let mut dom: Vec<HashSet<usize>> = vec![all; n];
    if n == 0 || !mask[0] {
        return dom;
    }
    dom[0] = HashSet::from([0]);
    let preds: Vec<Vec<usize>> = (0..n)
        .map(|b| {
            preds(f, b)
                .into_iter()
                .filter(|&p| mask[p])
                .collect::<Vec<_>>()
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for b in 1..n {
            if !mask[b] {
                continue;
            }
            let mut new: Option<HashSet<usize>> = None;
            for &p in &preds[b] {
                new = Some(match new {
                    None => dom[p].clone(),
                    Some(acc) => acc.intersection(&dom[p]).copied().collect(),
                });
            }
            let mut new = new.unwrap_or_default();
            new.insert(b);
            if new != dom[b] {
                dom[b] = new;
                changed = true;
            }
        }
    }
    dom
}

pub(super) fn preds(f: &FuncIr, target: usize) -> Vec<usize> {
    (0..f.blocks.len())
        .filter(|&bi| {
            f.blocks[bi]
                .successors()
                .iter()
                .any(|s| s.0 as usize == target)
        })
        .collect()
}

/// True back edges (latch, header): u→v with v dominating u (switch
/// lowering also produces harmless backward-numbered forward edges).
pub(super) fn back_edges(f: &FuncIr, dom: &[HashSet<usize>]) -> Vec<(usize, usize)> {
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        for s in b.successors() {
            let h = s.0 as usize;
            if dom[bi].contains(&h) {
                edges.push((bi, h));
            }
        }
    }
    edges.sort();
    edges.dedup();
    edges
}

/// Natural loop of the back edge latch→header: header plus every block
/// that reaches the latch without passing through the header.
pub(super) fn loop_blocks(f: &FuncIr, latch: usize, header: usize) -> Vec<usize> {
    let mut in_loop = vec![false; f.blocks.len()];
    in_loop[header] = true;
    let mut work = vec![latch];
    while let Some(b) = work.pop() {
        if in_loop[b] {
            continue;
        }
        in_loop[b] = true;
        for p in preds(f, b) {
            work.push(p);
        }
    }
    (0..f.blocks.len()).filter(|&b| in_loop[b]).collect()
}

/// Appends a preheader block holding `instrs` followed by a jump to
/// `header`, and redirects every predecessor of `header` outside
/// `in_loop` to it. Returns the new block's id.
pub(super) fn insert_preheader(
    f: &mut FuncIr,
    header: usize,
    in_loop: impl Fn(usize) -> bool,
    mut instrs: Vec<Instr>,
) -> BlockId {
    let pre_id = BlockId(f.blocks.len() as u32);
    instrs.push(Instr::Jump {
        target: BlockId(header as u32),
    });
    f.blocks.push(Block { instrs });
    for bi in 0..f.blocks.len() - 1 {
        if in_loop(bi) {
            continue;
        }
        let block = &mut f.blocks[bi];
        if let Some(last) = block.instrs.last_mut() {
            match last {
                Instr::Jump { target } if target.0 as usize == header => *target = pre_id,
                Instr::Branch {
                    if_true, if_false, ..
                } => {
                    if if_true.0 as usize == header {
                        *if_true = pre_id;
                    }
                    if if_false.0 as usize == header {
                        *if_false = pre_id;
                    }
                }
                _ => {}
            }
        }
    }
    pre_id
}
