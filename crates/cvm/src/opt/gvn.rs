//! Global value numbering.
//!
//! Subsumes block-local CSE for pure expressions: a recomputation of
//! `p + 8` in a block dominated by an identical computation becomes a
//! copy of the earlier result. This is a disguise generator — the merged
//! temp's live range now stretches across every call on the path between
//! the two occurrences, so the derived (possibly displaced) pointer is
//! exactly what the conservative collector sees when one of those calls
//! collects. The annotator's `KeepLive` base operands keep the true base
//! findable; GVN itself never folds through a `KeepLive`/`CheckSame`
//! result because those dsts are not pure expressions.
//!
//! The IR is not SSA — temps are freely redefined — so expression keys
//! are only compared over temps with at most one definition in the whole
//! function (params count as a definition). A replacement additionally
//! requires, for every temp operand, that its unique definition
//! *dominates the source occurrence*, and that the source dominates the
//! target. That makes the copy sound even when the operand's definition
//! sits inside a loop: any path that re-executes the definition and then
//! reaches the target must re-pass the source (otherwise a path from
//! entry through the definition to the target would bypass the source,
//! contradicting source-dominates-target), so the source's result is
//! recomputed from the operand value the target would have used.

use super::cfg::dominators;
use crate::ir::*;
use std::collections::HashMap;

/// Runs global value numbering; returns the number of cross- or
/// in-block recomputations replaced with copies.
pub fn gvn(f: &mut FuncIr) -> usize {
    // Definition counts and sites, with the implicit entry binding of
    // every param counted as a definition (site: function entry).
    let mut defs: HashMap<Temp, usize> = HashMap::new();
    let mut def_site: HashMap<Temp, (usize, usize)> = HashMap::new();
    for &p in &f.param_temps {
        *defs.entry(p).or_insert(0) += 1;
    }
    for (bi, b) in f.blocks.iter().enumerate() {
        for (ii, ins) in b.instrs.iter().enumerate() {
            if let Some(d) = ins.dst() {
                *defs.entry(d).or_insert(0) += 1;
                def_site.insert(d, (bi, ii));
            }
        }
    }
    let single_def = |o: Operand| match o {
        Operand::Temp(t) => defs.get(&t).copied().unwrap_or(0) <= 1,
        Operand::Const(_) => true,
    };
    let dom = dominators(f);
    // An operand value is pinned at position `at` when it is a constant,
    // a never-redefined param, a never-written temp (the VM's
    // zero-initialised frame), or a single-def temp whose definition
    // dominates `at`.
    let pinned_at = |o: Operand, at: (usize, usize)| match o {
        Operand::Const(_) => true,
        Operand::Temp(t) => match def_site.get(&t) {
            None => true, // param entry binding or never written
            Some(&(dbi, dii)) => {
                (dbi == at.0 && dii < at.1) || (dbi != at.0 && dom[at.0].contains(&dbi))
            }
        },
    };
    // Collect occurrences of pure expressions over single-def operands.
    struct Occ {
        bi: usize,
        ii: usize,
        dst: Temp,
        /// Reusable as a copy source: dst is single-def and every
        /// operand's definition dominates this occurrence.
        source: bool,
    }
    let mut table: HashMap<String, Vec<Occ>> = HashMap::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        for (ii, ins) in b.instrs.iter().enumerate() {
            let (key, operands) = match ins {
                Instr::Bin { dst, op, a, b } if single_def(*a) && single_def(*b) => {
                    // The dst must not feed its own operands (a single-def
                    // self-reference would read an undefined value).
                    if a.as_temp() == Some(*dst) || b.as_temp() == Some(*dst) {
                        continue;
                    }
                    // Canonicalize commutative operand order so `a+b`
                    // and `b+a` share a value number.
                    let (x, y) = (format!("{a}"), format!("{b}"));
                    let key = if op.commutative() && x > y {
                        format!("{op:?}|{y}|{x}|")
                    } else {
                        format!("{op:?}|{x}|{y}|")
                    };
                    (key, vec![*a, *b])
                }
                Instr::FrameAddr { offset, .. } => (format!("fp|{offset}|"), vec![]),
                _ => continue,
            };
            let dst = ins.dst().expect("pure ops define");
            let source =
                single_def(Operand::Temp(dst)) && operands.iter().all(|&o| pinned_at(o, (bi, ii)));
            table.entry(key).or_default().push(Occ {
                bi,
                ii,
                dst,
                source,
            });
        }
    }
    // Rewrite each occurrence that is dominated by an earlier reusable
    // occurrence of the same value.
    let mut fires = 0usize;
    for occs in table.values() {
        for target in occs {
            let src = occs
                .iter()
                .filter(|s| {
                    s.source
                        && s.dst != target.dst
                        && ((s.bi == target.bi && s.ii < target.ii)
                            || (s.bi != target.bi && dom[target.bi].contains(&s.bi)))
                })
                .min_by_key(|s| (s.bi, s.ii));
            if let Some(s) = src {
                f.blocks[target.bi].instrs[target.ii] = Instr::Mov {
                    dst: target.dst,
                    src: Operand::Temp(s.dst),
                };
                fires += 1;
            }
        }
    }
    fires
}
