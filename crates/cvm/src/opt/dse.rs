//! Dead-store elimination.
//!
//! A store is dead when the same address is overwritten by at least as
//! wide a store, in the same block, with nothing in between that could
//! observe memory. "Observe" is deliberately conservative about the
//! collector: besides loads and memcopies, every *call* is a barrier,
//! because a call is a collection point — the conservative collector
//! scans the heap during a collection, so a store of the last pointer to
//! an object may be exactly what makes that object findable (the paper's
//! scariest disguise). By refusing to eliminate across calls, no
//! collection can ever run between the elided store and the overwrite
//! that justified it, and the heap the collector sees is identical with
//! and without the pass. The store's *address* computation usually dies
//! with it (dce), which shortens pointer live ranges before the call —
//! that liveness shift is the hazard surface the annotator's `KeepLive`
//! base operands must absorb, and the fuzz soak exercises.
//!
//! `KeepLive`/`CheckSame` are not barriers: they inspect object
//! identity and the page map, never stored contents — but they are also
//! never removed by this pass (only plain `Store`s are candidates).

use crate::ir::*;
use std::collections::HashMap;

/// Runs dead-store elimination; returns the number of stores removed.
pub fn dse(f: &mut FuncIr) -> usize {
    let mut fires = 0usize;
    for b in &mut f.blocks {
        // (address operand, width) of stores seen later in the block with
        // no intervening observer.
        let mut pending: HashMap<Operand, u8> = HashMap::new();
        let mut dead: Vec<usize> = Vec::new();
        for ii in (0..b.instrs.len()).rev() {
            let ins = &b.instrs[ii];
            match ins {
                Instr::Store { addr, width, .. } => {
                    match pending.get(addr) {
                        Some(&w) if w >= *width => {
                            // Overwritten before any possible read (or
                            // collection): dead.
                            dead.push(ii);
                            fires += 1;
                            continue;
                        }
                        _ => {
                            // Track the widest pending store per address.
                            let w = pending.entry(*addr).or_insert(0);
                            *w = (*w).max(*width);
                        }
                    }
                }
                // Reads — and collection points — invalidate everything:
                // loads and memcopies may alias any address, and a call
                // may trigger a collection that scans the heap.
                Instr::Load { .. } | Instr::MemCopy { .. } | Instr::Call { .. } => {
                    pending.clear();
                }
                _ => {
                    // A redefinition of an address temp means earlier
                    // stores through it hit a different location.
                    if let Some(d) = ins.dst() {
                        pending.retain(|a, _| a.as_temp() != Some(d));
                    }
                }
            }
        }
        for ii in dead {
            b.instrs.remove(ii);
        }
    }
    fires
}
