//! The optimizer: a registry of [`Pass`]es driven to a fixpoint.
//!
//! The same passes run for the `-O` baseline and the `-O safe` (annotated)
//! build — the paper's point is that `KEEP_LIVE` does **not** require
//! suppressing optimizations, only preserving values longer. Several of
//! the passes are exactly the kind that "disguise" pointers:
//!
//! * [`reassociate`] rewrites `p + (i - c)` into `(p - c) + i`, creating an
//!   intermediate that may point *outside* the object (the paper's opening
//!   `p[i-1000]` example);
//! * [`schedule_early`] hoists pure arithmetic upward, past calls — so the
//!   out-of-object intermediate can be the only surviving value when a
//!   collection triggers inside an allocation call;
//! * [`gvn`] merges recomputations across blocks, stretching a derived
//!   pointer's live range over call-bearing paths;
//! * [`strength_reduce`] turns `a + i*s` indexing into a pointer that is
//!   *incremented* around the loop — an interior pointer that may be the
//!   only surviving reference when an in-loop allocation collects;
//! * [`dse`] deletes heap stores that are overwritten before any read —
//!   it stops at calls precisely because a call is a collection point and
//!   the store may be what makes a pointer findable.
//!
//! With annotations, none of these passes is blocked; the `KeepLive`
//! *base* use simply keeps the original pointer live across the call,
//! which is the whole trick.
//!
//! # Driver
//!
//! Passes implement [`Pass`] and are registered (in order) in
//! [`registry`]. The driver sweeps the registered pipeline repeatedly
//! until a full sweep reports zero changes, or [`FIXPOINT_SWEEP_CAP`]
//! sweeps have run. Termination is argued pass-by-pass: every rewrite
//! either strictly removes an instruction (dce, dse, cse/gvn duplicates
//! become moves that copy-prop + dce retire), replaces an instruction
//! with a strictly simpler form that no pass re-complicates (const_fold,
//! sccp rewrites toward constants; `Mul`→`Shl` is one-way), or moves a
//! computation to a place where its own guard no longer fires
//! (reassociate refuses displaced bases it already created, licm's
//! hoisted instructions are no longer in the loop, schedule_early finds
//! every instruction already in its earliest slot, strength reduction
//! consumes the `i*s` multiply it matched on). The cap is a backstop,
//! not a crutch — the idempotence property test asserts a second driver
//! run reports zero fires for every pass.

mod cfg;
mod dse;
mod gvn;
mod licm;
mod reassoc;
mod scalar;
mod sccp;
mod schedule;
mod strength;

#[cfg(test)]
mod tests;

pub use dse::dse;
pub use gvn::gvn;
pub use licm::licm;
pub use reassoc::reassociate;
pub use scalar::{const_fold, copy_prop, cse, dce};
pub use sccp::sccp;
pub use schedule::schedule_early;
pub use strength::strength_reduce;

use crate::ir::*;
use gctrace::{Event, TraceHandle};
use std::collections::HashMap;

/// Optimizer configuration: one enable flag per gated pass, so the
/// fuzzer's five-mode oracle can bisect a divergence to the pass that
/// introduced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OptOptions {
    /// Master switch (false = `-g`-style unoptimized code).
    pub enabled: bool,
    /// Run the displacement reassociation pass.
    pub reassociate: bool,
    /// Run the eager scheduler.
    pub schedule: bool,
    /// Run loop-invariant code motion.
    pub licm: bool,
    /// Run global value numbering.
    pub gvn: bool,
    /// Run sparse conditional constant propagation.
    pub sccp: bool,
    /// Run dead-store elimination.
    pub dse: bool,
    /// Run strength reduction on address arithmetic.
    pub strength: bool,
}

impl Default for OptOptions {
    fn default() -> Self {
        OptOptions {
            enabled: true,
            reassociate: true,
            schedule: true,
            licm: true,
            gvn: true,
            sccp: true,
            dse: true,
            strength: true,
        }
    }
}

impl OptOptions {
    /// Full optimization (the `-O` rows).
    pub fn full() -> Self {
        Self::default()
    }

    /// No optimization (the `-g` rows).
    pub fn none() -> Self {
        OptOptions {
            enabled: false,
            reassociate: false,
            schedule: false,
            licm: false,
            gvn: false,
            sccp: false,
            dse: false,
            strength: false,
        }
    }
}

/// A registered optimization pass.
///
/// `run` applies the pass once and returns the number of rewrites it
/// performed; the fixpoint driver sums these per sweep and stops when a
/// full sweep fires nothing. A pass must report zero once it has nothing
/// left to do — a pass that "fires" without changing the function would
/// spin the driver into its sweep cap.
pub trait Pass: Sync {
    /// Stable name used in trace events, Prometheus labels, and tables.
    fn name(&self) -> &'static str;
    /// Whether this pass is enabled under the given options.
    fn enabled(&self, opts: &OptOptions) -> bool;
    /// Apply the pass once; returns the number of rewrites.
    fn run(&self, f: &mut FuncIr) -> usize;
}

macro_rules! register_pass {
    ($ty:ident, $name:literal, $gate:expr, $run:expr) => {
        struct $ty;
        impl Pass for $ty {
            fn name(&self) -> &'static str {
                $name
            }
            fn enabled(&self, opts: &OptOptions) -> bool {
                let gate: fn(&OptOptions) -> bool = $gate;
                gate(opts)
            }
            fn run(&self, f: &mut FuncIr) -> usize {
                let run: fn(&mut FuncIr) -> usize = $run;
                run(f)
            }
        }
    };
}

register_pass!(CopyProp, "copy_prop", |_| true, copy_prop);
register_pass!(Sccp, "sccp", |o| o.sccp, sccp);
register_pass!(ConstFold, "const_fold", |_| true, const_fold);
register_pass!(Reassociate, "reassociate", |o| o.reassociate, reassociate);
register_pass!(Gvn, "gvn", |o| o.gvn, gvn);
register_pass!(Cse, "cse", |_| true, cse);
register_pass!(Dse, "dse", |o| o.dse, dse);
register_pass!(Licm, "licm", |o| o.licm, licm);
register_pass!(Strength, "strength", |o| o.strength, strength_reduce);
register_pass!(Dce, "dce", |_| true, dce);
register_pass!(
    ScheduleEarly,
    "schedule_early",
    |o| o.schedule,
    schedule_early
);

/// The registered pipeline, in sweep order. Ordering rationale:
/// copy/constant facts first (copy_prop, sccp, const_fold) so the
/// pattern-matching passes see canonical operands; reassociate before
/// gvn/cse so displaced bases participate in value numbering; dse after
/// cse's load elimination; licm before strength reduction so invariant
/// operands are already hoisted when induction candidates are matched;
/// dce sweeps the corpses; the scheduler runs last because it only moves
/// instructions that survived.
pub fn registry() -> &'static [&'static dyn Pass] {
    const REGISTRY: &[&'static dyn Pass] = &[
        &CopyProp,
        &Sccp,
        &ConstFold,
        &Reassociate,
        &Gvn,
        &Cse,
        &Dse,
        &Licm,
        &Strength,
        &Dce,
        &ScheduleEarly,
    ];
    REGISTRY
}

/// Names of every registered pass, in sweep order.
pub fn pass_names() -> Vec<&'static str> {
    registry().iter().map(|p| p.name()).collect()
}

/// Hard cap on driver sweeps per function. The pipeline converges in a
/// handful of sweeps on real programs (the idempotence tests assert it);
/// the cap bounds the damage if a future pass pair oscillates.
pub const FIXPOINT_SWEEP_CAP: usize = 16;

/// Per-function record of what the fixpoint driver did: how many sweeps
/// ran and how many times each registered pass fired (summed across
/// sweeps, in registry order; disabled passes report zero).
#[derive(Debug, Clone, Default)]
pub struct PassLedger {
    /// Number of sweeps the driver ran (including the final all-zero one).
    pub sweeps: usize,
    /// `(pass name, total fires)` in registry order.
    pub fires: Vec<(&'static str, usize)>,
}

impl PassLedger {
    /// Total fires recorded for the named pass.
    pub fn fires_for(&self, pass: &str) -> usize {
        self.fires
            .iter()
            .find(|(n, _)| *n == pass)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }
}

/// Optimizes every function of a program in place.
pub fn optimize(prog: &mut ProgramIr, opts: OptOptions) {
    optimize_traced(prog, opts, &TraceHandle::disabled());
}

/// [`optimize`] with a trace: emits one `("opt", "pass")` event per
/// registered pass that fired and one `("opt", "function")` summary per
/// function.
pub fn optimize_traced(prog: &mut ProgramIr, opts: OptOptions, trace: &TraceHandle) {
    if !opts.enabled {
        return;
    }
    for f in &mut prog.funcs {
        optimize_func_traced(f, opts, trace);
    }
}

/// Optimizes a single function in place.
pub fn optimize_func(f: &mut FuncIr, opts: OptOptions) {
    optimize_func_traced(f, opts, &TraceHandle::disabled());
}

/// Runs the fixpoint driver over the registered pipeline and returns the
/// per-pass fire ledger.
pub fn optimize_func_ledger(f: &mut FuncIr, opts: OptOptions) -> PassLedger {
    let passes = registry();
    let mut ledger = PassLedger {
        sweeps: 0,
        fires: passes.iter().map(|p| (p.name(), 0)).collect(),
    };
    if !opts.enabled {
        return ledger;
    }
    while ledger.sweeps < FIXPOINT_SWEEP_CAP {
        ledger.sweeps += 1;
        let mut sweep_fires = 0usize;
        for (i, p) in passes.iter().enumerate() {
            if !p.enabled(&opts) {
                continue;
            }
            let fires = p.run(f);
            ledger.fires[i].1 += fires;
            sweep_fires += fires;
        }
        if sweep_fires == 0 {
            break;
        }
    }
    ledger
}

/// [`optimize_func`] with per-pass rewrite events.
pub fn optimize_func_traced(f: &mut FuncIr, opts: OptOptions, trace: &TraceHandle) {
    let instrs_before = instr_count(f);
    let ledger = optimize_func_ledger(f, opts);
    for (pass, fires) in &ledger.fires {
        if *fires > 0 {
            trace.emit(|| {
                Event::new("opt", "pass")
                    .field("func", f.name.as_str())
                    .field("pass", *pass)
                    .field("fires", *fires)
            });
        }
    }
    trace.emit(|| {
        Event::new("opt", "function")
            .field("func", f.name.as_str())
            .field("instrs_before", instrs_before)
            .field("instrs_after", instr_count(f))
            .field("sweeps", ledger.sweeps)
            .field("reassociations", ledger.fires_for("reassociate"))
            .field("licm_hoists", ledger.fires_for("licm"))
            .field("scheduler_moves", ledger.fires_for("schedule_early"))
    });
}

pub(crate) fn instr_count(f: &FuncIr) -> usize {
    f.blocks.iter().map(|b| b.instrs.len()).sum()
}

pub(crate) fn count_uses(f: &FuncIr) -> HashMap<Temp, usize> {
    let mut uses: HashMap<Temp, usize> = HashMap::new();
    let mut buf = Vec::new();
    for b in &f.blocks {
        for ins in &b.instrs {
            buf.clear();
            ins.uses(&mut buf);
            for &t in &buf {
                *uses.entry(t).or_insert(0) += 1;
            }
        }
    }
    uses
}

pub(crate) fn rewrite_operands(ins: &mut Instr, mut f: impl FnMut(Operand) -> Operand) {
    match ins {
        Instr::Mov { src, .. } => *src = f(*src),
        Instr::Bin { a, b, .. } => {
            *a = f(*a);
            *b = f(*b);
        }
        Instr::Load { addr, .. } => *addr = f(*addr),
        Instr::Store { addr, value, .. } => {
            *addr = f(*addr);
            *value = f(*value);
        }
        Instr::MemCopy {
            dst_addr, src_addr, ..
        } => {
            *dst_addr = f(*dst_addr);
            *src_addr = f(*src_addr);
        }
        Instr::Call { target, args, .. } => {
            if let CallTarget::Indirect(o) = target {
                *o = f(*o);
            }
            for a in args {
                *a = f(*a);
            }
        }
        Instr::KeepLive { value, base, .. } => {
            *value = f(*value);
            if let Some(b) = base {
                *b = f(*b);
            }
        }
        Instr::CheckSame { value, base, .. } => {
            *value = f(*value);
            *base = f(*base);
        }
        Instr::Ret { value: Some(v) } => *v = f(*v),
        Instr::Branch { cond, .. } => *cond = f(*cond),
        Instr::Const { .. }
        | Instr::FrameAddr { .. }
        | Instr::Ret { value: None }
        | Instr::Jump { .. } => {}
    }
}
