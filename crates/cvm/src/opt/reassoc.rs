//! Displacement reassociation.

use super::scalar::dce;
use crate::ir::*;
use std::collections::HashMap;

/// Displacement reassociation: `t1 = i ± c; t2 = p + t1` becomes
/// `t3 = p ± c; t2 = t3 + i` when `t1` has no other use. The new `t3` may
/// point outside any object — this is the paper's disguising hazard,
/// reproduced as an honest strength-style optimization (it enables LICM
/// and scheduling of the displaced base). Returns the number of
/// displacement rewrites applied.
pub fn reassociate(f: &mut FuncIr) -> usize {
    let uses = super::count_uses(f);
    let mut next_temp = f.temp_count;
    let mut fires = 0usize;
    for b in &mut f.blocks {
        // dst → (op, i-operand, c) for `dst = i op c` still valid here.
        let mut defs: HashMap<Temp, (BinIr, Operand, i64)> = HashMap::new();
        let mut new_instrs: Vec<Instr> = Vec::with_capacity(b.instrs.len());
        let invalidate = |defs: &mut HashMap<Temp, (BinIr, Operand, i64)>, d: Temp| {
            // A redefinition kills both the entry for d and any entry whose
            // recorded operand would now read a different value.
            defs.remove(&d);
            defs.retain(|_, (_, i_op, _)| i_op.as_temp() != Some(d));
        };
        for ins in b.instrs.drain(..) {
            match ins {
                Instr::Bin {
                    dst,
                    op: op @ (BinIr::Add | BinIr::Sub),
                    a,
                    b: Operand::Const(c),
                } if a.as_temp() != Some(dst) => {
                    invalidate(&mut defs, dst);
                    defs.insert(dst, (op, a, c));
                    new_instrs.push(Instr::Bin {
                        dst,
                        op,
                        a,
                        b: Operand::Const(c),
                    });
                }
                Instr::Bin {
                    dst,
                    op: BinIr::Add,
                    a: Operand::Temp(p),
                    b: Operand::Temp(t1),
                } if t1 != dst
                    && p != dst
                    && defs.contains_key(&t1)
                    && uses.get(&t1).copied().unwrap_or(0) == 1
                    && !defs.contains_key(&p) =>
                {
                    // p + (i ± c)  →  (p ± c) + i
                    let (op1, i_op, c) = defs[&t1];
                    let t3 = Temp(next_temp);
                    next_temp += 1;
                    new_instrs.push(Instr::Bin {
                        dst: t3,
                        op: op1,
                        a: Operand::Temp(p),
                        b: Operand::Const(c),
                    });
                    new_instrs.push(Instr::Bin {
                        dst,
                        op: BinIr::Add,
                        a: Operand::Temp(t3),
                        b: i_op,
                    });
                    invalidate(&mut defs, dst);
                    fires += 1;
                }
                other => {
                    if let Some(d) = other.dst() {
                        invalidate(&mut defs, d);
                    }
                    new_instrs.push(other);
                }
            }
        }
        b.instrs = new_instrs;
    }
    f.temp_count = next_temp;
    // The original displacement adds may now be dead.
    dce(f);
    fires
}
