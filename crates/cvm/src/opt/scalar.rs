//! The straight-line scalar passes: copy/constant propagation, constant
//! folding, block-local CSE, and dead-code elimination.

use super::{count_uses, rewrite_operands};
use crate::ir::*;
use std::collections::HashMap;

/// Block-local copy and constant propagation. Returns the number of
/// operands rewritten.
pub fn copy_prop(f: &mut FuncIr) -> usize {
    let mut fires = 0usize;
    for b in &mut f.blocks {
        let mut env: HashMap<Temp, Operand> = HashMap::new();
        for ins in &mut b.instrs {
            // Rewrite uses through the environment (one step is enough
            // because the environment is kept transitively resolved).
            rewrite_operands(ins, |o| match o {
                Operand::Temp(t) => match env.get(&t) {
                    Some(&r) => {
                        fires += 1;
                        r
                    }
                    None => o,
                },
                c => c,
            });
            // Kill mappings clobbered by this def.
            if let Some(d) = ins.dst() {
                env.remove(&d);
                env.retain(|_, v| v.as_temp() != Some(d));
            }
            // Record new copies.
            match ins {
                Instr::Mov { dst, src } if src.as_temp() != Some(*dst) => {
                    env.insert(*dst, *src);
                }
                Instr::Const { dst, value } => {
                    env.insert(*dst, Operand::Const(*value));
                }
                _ => {}
            }
        }
    }
    fires
}

/// Constant folding and algebraic simplification. Returns the number of
/// instructions simplified.
pub fn const_fold(f: &mut FuncIr) -> usize {
    let mut fires = 0usize;
    for b in &mut f.blocks {
        for ins in &mut b.instrs {
            let replacement = match ins {
                Instr::Bin { dst, op, a, b } => match (a.as_const(), b.as_const()) {
                    (Some(x), Some(y)) => Some(Instr::Const {
                        dst: *dst,
                        value: op.eval(x, y),
                    }),
                    (None, Some(0))
                        if matches!(
                            op,
                            BinIr::Add
                                | BinIr::Sub
                                | BinIr::Or
                                | BinIr::Xor
                                | BinIr::Shl
                                | BinIr::Sar
                                | BinIr::Shr
                        ) =>
                    {
                        Some(Instr::Mov { dst: *dst, src: *a })
                    }
                    (Some(0), None) if *op == BinIr::Add => Some(Instr::Mov { dst: *dst, src: *b }),
                    (None, Some(1)) if matches!(op, BinIr::Mul | BinIr::Div | BinIr::DivU) => {
                        Some(Instr::Mov { dst: *dst, src: *a })
                    }
                    (Some(1), None) if *op == BinIr::Mul => Some(Instr::Mov { dst: *dst, src: *b }),
                    (None, Some(0)) if *op == BinIr::Mul => Some(Instr::Const {
                        dst: *dst,
                        value: 0,
                    }),
                    (None, Some(c)) if *op == BinIr::Mul && c.count_ones() == 1 && c > 0 => {
                        // Strength reduction: multiply by power of two.
                        Some(Instr::Bin {
                            dst: *dst,
                            op: BinIr::Shl,
                            a: *a,
                            b: Operand::Const(c.trailing_zeros() as i64),
                        })
                    }
                    _ => None,
                },
                _ => None,
            };
            if let Some(r) = replacement {
                *ins = r;
                fires += 1;
            }
        }
        // Fold constant branches.
        if let Some(Instr::Branch {
            cond: Operand::Const(c),
            if_true,
            if_false,
        }) = b.instrs.last().cloned()
        {
            let target = if c != 0 { if_true } else { if_false };
            *b.instrs.last_mut().expect("non-empty block") = Instr::Jump { target };
            fires += 1;
        }
    }
    fires
}

/// Block-local common-subexpression elimination (value numbering over
/// pure ops, plus redundant-load elimination up to the next clobber).
/// Returns the number of redundant computations folded into copies.
pub fn cse(f: &mut FuncIr) -> usize {
    let mut fires = 0usize;
    for b in &mut f.blocks {
        let mut avail: HashMap<String, Temp> = HashMap::new();
        let mut loads: HashMap<(Operand, u8, bool), Temp> = HashMap::new();
        for ins in &mut b.instrs {
            // Compute the lookup key first (on the unmodified instruction).
            let key = match ins {
                Instr::Bin { op, a, b, .. } => Some(format!("{op:?}|{a}|{b}|")),
                Instr::FrameAddr { offset, .. } => Some(format!("fp|{offset}|")),
                _ => None,
            };
            let hit = key.as_ref().and_then(|k| avail.get(k).copied());
            let load_key = match ins {
                Instr::Load {
                    addr,
                    width,
                    signed,
                    ..
                } => Some((*addr, *width, *signed)),
                _ => None,
            };
            let load_hit = load_key.and_then(|k| loads.get(&k).copied());
            // Rewrite hits into copies.
            if let (Some(_), Some(prev)) = (&key, hit) {
                let dst = ins.dst().expect("pure ops define");
                *ins = Instr::Mov {
                    dst,
                    src: prev.into(),
                };
                fires += 1;
            }
            if let (Some(_), Some(prev)) = (load_key, load_hit) {
                let dst = ins.dst().expect("loads define");
                *ins = Instr::Mov {
                    dst,
                    src: prev.into(),
                };
                fires += 1;
            }
            // Clobbers kill all remembered loads.
            if matches!(
                ins,
                Instr::Store { .. } | Instr::MemCopy { .. } | Instr::Call { .. }
            ) {
                loads.clear();
            }
            // The def invalidates every fact mentioning it…
            if let Some(d) = ins.dst() {
                let dn = format!("|{d}|");
                avail.retain(|k, v| *v != d && !k.contains(&dn));
                loads.retain(|(a, _, _), v| *v != d && a.as_temp() != Some(d));
            }
            // …after which fresh facts become available.
            if let (Some(k), None) = (key, hit) {
                if let Some(dst) = ins.dst() {
                    avail.insert(k, dst);
                }
            }
            if let (Some(k), None, Some(dst)) = (load_key, load_hit, ins.dst()) {
                if matches!(ins, Instr::Load { .. }) {
                    loads.insert(k, dst);
                }
            }
        }
    }
    fires
}

/// Global dead-code elimination over temps. Returns the number of
/// instructions removed.
pub fn dce(f: &mut FuncIr) -> usize {
    let mut fires = 0usize;
    loop {
        let uses = count_uses(f);
        let mut changed = false;
        for b in &mut f.blocks {
            let before = b.instrs.len();
            b.instrs.retain(|ins| {
                if ins.has_side_effects() || ins.is_terminator() {
                    return true;
                }
                match ins.dst() {
                    Some(d) => uses.get(&d).copied().unwrap_or(0) > 0,
                    None => true,
                }
            });
            // Drop no-op moves.
            b.instrs.retain(
                |ins| !matches!(ins, Instr::Mov { dst, src } if src.as_temp() == Some(*dst)),
            );
            if b.instrs.len() != before {
                fires += before - b.instrs.len();
                changed = true;
            }
        }
        if !changed {
            return fires;
        }
    }
}
