//! Loop-invariant code motion.

use super::cfg::{back_edges, dominators, insert_preheader, loop_blocks};
use crate::ir::*;
use std::collections::HashMap;

/// Loop-invariant code motion.
///
/// The paper's opening hazard is precisely a loop optimization: hoisting
/// the displaced base `p - 1000` out of a loop that evaluates `p[i-1000]`
/// leaves only the out-of-object pointer live inside the loop. This pass
/// performs that hoisting honestly: natural loops are found via back
/// edges (our structured lowering emits headers before bodies), a
/// preheader is inserted, and pure single-def instructions whose operands
/// are loop-invariant move to it. `KeepLive`/`CheckSame` are ordering
/// points and never move — but they don't need to: their *base* operand
/// keeps the object visible wherever the arithmetic lands.
///
/// Returns the number of instructions hoisted to preheaders.
pub fn licm(f: &mut FuncIr) -> usize {
    let dom = dominators(f);
    let mut hoisted = 0usize;
    for (latch, header) in back_edges(f, &dom) {
        if header == 0 {
            continue; // entry block cannot take a preheader safely
        }
        hoisted += hoist_loop(f, latch, header);
    }
    hoisted
}

fn hoist_loop(f: &mut FuncIr, latch: usize, header: usize) -> usize {
    use crate::liveness::Liveness;
    let blocks = loop_blocks(f, latch, header);
    let in_loop = |b: usize| blocks.contains(&b);
    // Definition counts inside the loop.
    let mut defs_in_loop: HashMap<Temp, usize> = HashMap::new();
    for &bi in &blocks {
        for ins in &f.blocks[bi].instrs {
            if let Some(d) = ins.dst() {
                *defs_in_loop.entry(d).or_insert(0) += 1;
            }
        }
    }
    let lv = Liveness::compute(f);
    // Collect hoistable instructions to a fixpoint.
    let mut invariant: std::collections::HashSet<Temp> = std::collections::HashSet::new();
    let mut to_hoist: Vec<(usize, usize)> = Vec::new(); // (block, instr idx)
    let mut changed = true;
    while changed {
        changed = false;
        for &bi in &blocks {
            for (ii, ins) in f.blocks[bi].instrs.iter().enumerate() {
                if to_hoist.contains(&(bi, ii)) {
                    continue;
                }
                let pure = matches!(
                    ins,
                    Instr::Bin { .. } | Instr::Const { .. } | Instr::FrameAddr { .. }
                );
                if !pure {
                    continue;
                }
                let Some(d) = ins.dst() else { continue };
                if defs_in_loop.get(&d).copied().unwrap_or(0) != 1 {
                    continue;
                }
                // The def must be fresh inside the loop (not carried in).
                if lv.live_in[header].contains(d) {
                    continue;
                }
                let mut ops = Vec::new();
                ins.uses(&mut ops);
                let invariant_ops = ops.iter().all(|t| {
                    invariant.contains(t) || defs_in_loop.get(t).copied().unwrap_or(0) == 0
                });
                if invariant_ops {
                    to_hoist.push((bi, ii));
                    invariant.insert(d);
                    changed = true;
                }
            }
        }
    }
    if to_hoist.is_empty() {
        return 0;
    }
    // Build the preheader with the hoisted instructions in dependency
    // order (original program order across blocks is sufficient because
    // operands are invariant).
    to_hoist.sort();
    let mut pre_instrs: Vec<Instr> = Vec::new();
    // Remove from the back so indices stay valid.
    for &(bi, ii) in to_hoist.iter().rev() {
        let ins = f.blocks[bi].instrs.remove(ii);
        pre_instrs.push(ins);
    }
    pre_instrs.reverse();
    insert_preheader(f, header, in_loop, pre_instrs);
    to_hoist.len()
}

#[cfg(test)]
mod licm_tests {
    use super::*;

    fn t(n: u32) -> Temp {
        Temp(n)
    }

    /// bb0: t0=100; jump bb1
    /// bb1: t1 = t0 - 7  (invariant); t2 = t2 + t1; br t2 ? bb1 : bb2
    /// bb2: ret t2
    fn loopy() -> FuncIr {
        FuncIr {
            name: "l".into(),
            blocks: vec![
                Block {
                    instrs: vec![
                        Instr::Const {
                            dst: t(0),
                            value: 100,
                        },
                        Instr::Const {
                            dst: t(2),
                            value: 0,
                        },
                        Instr::Jump { target: BlockId(1) },
                    ],
                },
                Block {
                    instrs: vec![
                        Instr::Bin {
                            dst: t(1),
                            op: BinIr::Sub,
                            a: t(0).into(),
                            b: Operand::Const(7),
                        },
                        Instr::Bin {
                            dst: t(2),
                            op: BinIr::Add,
                            a: t(2).into(),
                            b: t(1).into(),
                        },
                        Instr::Bin {
                            dst: t(3),
                            op: BinIr::CmpLt,
                            a: t(2).into(),
                            b: Operand::Const(1000),
                        },
                        Instr::Branch {
                            cond: t(3).into(),
                            if_true: BlockId(1),
                            if_false: BlockId(2),
                        },
                    ],
                },
                Block {
                    instrs: vec![Instr::Ret {
                        value: Some(t(2).into()),
                    }],
                },
            ],
            temp_count: 4,
            param_temps: vec![],
            frame_size: 0,
            returns_value: true,
        }
    }

    #[test]
    fn hoists_invariant_computation() {
        let mut f = loopy();
        licm(&mut f);
        // The Sub moved to a new preheader block.
        assert_eq!(f.blocks.len(), 4, "{}", f.dump());
        let body = &f.blocks[1].instrs;
        assert!(
            !body
                .iter()
                .any(|i| matches!(i, Instr::Bin { op: BinIr::Sub, .. })),
            "sub left the loop:\n{}",
            f.dump()
        );
        let pre = &f.blocks[3].instrs;
        assert!(pre
            .iter()
            .any(|i| matches!(i, Instr::Bin { op: BinIr::Sub, .. })));
        // bb0 now enters through the preheader.
        assert_eq!(f.blocks[0].successors(), vec![BlockId(3)]);
        assert_eq!(f.blocks[3].successors(), vec![BlockId(1)]);
    }

    #[test]
    fn does_not_hoist_variant_computation() {
        let mut f = loopy();
        licm(&mut f);
        // t2 = t2 + t1 stays (t2 is loop-carried).
        let body = &f.blocks[1].instrs;
        assert!(body
            .iter()
            .any(|i| matches!(i, Instr::Bin { op: BinIr::Add, .. })));
    }

    #[test]
    fn keep_live_is_never_hoisted() {
        let mut f = loopy();
        // Insert a keep_live of an invariant value inside the loop.
        f.temp_count = 5;
        f.blocks[1].instrs.insert(
            1,
            Instr::KeepLive {
                dst: t(4),
                value: t(1).into(),
                base: Some(t(0).into()),
            },
        );
        // Make its result used so DCE-style reasoning can't drop it.
        f.blocks[2].instrs.insert(
            0,
            Instr::Bin {
                dst: t(2),
                op: BinIr::Add,
                a: t(2).into(),
                b: t(4).into(),
            },
        );
        licm(&mut f);
        assert!(
            f.blocks[1]
                .instrs
                .iter()
                .any(|i| matches!(i, Instr::KeepLive { .. })),
            "keep_live stays in the loop:\n{}",
            f.dump()
        );
    }
}
